let () =
  Alcotest.run "cypher"
    [
      ("tri", Test_tri.suite);
      ("value", Test_value.suite);
      ("props", Test_props.suite);
      ("graph", Test_graph.suite);
      ("iso", Test_iso.suite);
      ("table", Test_table.suite);
      ("listx", Test_listx.suite);
      ("pool", Test_pool.suite);
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("expr", Test_expr.suite);
      ("matcher", Test_matcher.suite);
      ("reading", Test_reading.suite);
      ("create", Test_create.suite);
      ("set", Test_set.suite);
      ("remove", Test_remove.suite);
      ("delete", Test_delete.suite);
      ("merge", Test_merge.suite);
      ("foreach", Test_foreach.suite);
      ("csv", Test_csv.suite);
      ("homomorphism", Test_homomorphism.suite);
      ("quantifiers", Test_quantifiers.suite);
      ("pattern_pred", Test_pattern_pred.suite);
      ("pattern_comp", Test_pattern_comp.suite);
      ("shortest_path", Test_shortest_path.suite);
      ("session", Test_session.suite);
      ("fuzz", Test_fuzz.suite);
      ("corpus", Test_corpus.suite);
      ("errors", Test_errors.suite);
      ("integration", Test_integration.suite);
      ("differential", Test_differential.suite);
      ("experiments", Test_experiments.suite);
      ("properties", Test_properties.suite);
    ]
