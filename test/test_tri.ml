(** Ternary-logic laws — unit cases plus qcheck algebraic properties. *)

open Cypher_graph
open Test_util

let all3 = [ Tri.True; Tri.False; Tri.Unknown ]

let tri_gen = QCheck.Gen.oneofl all3
let tri_arb = QCheck.make ~print:(Fmt.str "%a" Tri.pp) tri_gen

let check_tri = Alcotest.check tri_testable

let unit_tests =
  [
    case "negation" (fun () ->
        check_tri "not true" Tri.False (Tri.neg Tri.True);
        check_tri "not false" Tri.True (Tri.neg Tri.False);
        check_tri "not unknown" Tri.Unknown (Tri.neg Tri.Unknown));
    case "conjunction truth table" (fun () ->
        check_tri "t&&t" Tri.True (Tri.conj Tri.True Tri.True);
        check_tri "t&&u" Tri.Unknown (Tri.conj Tri.True Tri.Unknown);
        check_tri "f&&u" Tri.False (Tri.conj Tri.False Tri.Unknown);
        check_tri "u&&u" Tri.Unknown (Tri.conj Tri.Unknown Tri.Unknown));
    case "disjunction truth table" (fun () ->
        check_tri "f||f" Tri.False (Tri.disj Tri.False Tri.False);
        check_tri "t||u" Tri.True (Tri.disj Tri.True Tri.Unknown);
        check_tri "f||u" Tri.Unknown (Tri.disj Tri.False Tri.Unknown));
    case "xor truth table" (fun () ->
        check_tri "t^t" Tri.False (Tri.xor Tri.True Tri.True);
        check_tri "t^f" Tri.True (Tri.xor Tri.True Tri.False);
        check_tri "t^u" Tri.Unknown (Tri.xor Tri.True Tri.Unknown);
        check_tri "u^u" Tri.Unknown (Tri.xor Tri.Unknown Tri.Unknown));
    case "where-filter keeps only true" (fun () ->
        Alcotest.(check bool) "true" true (Tri.to_bool_where Tri.True);
        Alcotest.(check bool) "false" false (Tri.to_bool_where Tri.False);
        Alcotest.(check bool) "unknown" false (Tri.to_bool_where Tri.Unknown));
    case "of_bool round trip" (fun () ->
        check_tri "true" Tri.True (Tri.of_bool true);
        check_tri "false" Tri.False (Tri.of_bool false));
  ]

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"De Morgan: not (a && b) = not a || not b"
        ~count:200 (QCheck.pair tri_arb tri_arb) (fun (a, b) ->
          Tri.neg (Tri.conj a b) = Tri.disj (Tri.neg a) (Tri.neg b));
      QCheck.Test.make ~name:"De Morgan: not (a || b) = not a && not b"
        ~count:200 (QCheck.pair tri_arb tri_arb) (fun (a, b) ->
          Tri.neg (Tri.disj a b) = Tri.conj (Tri.neg a) (Tri.neg b));
      QCheck.Test.make ~name:"conj commutative" ~count:200
        (QCheck.pair tri_arb tri_arb) (fun (a, b) ->
          Tri.conj a b = Tri.conj b a);
      QCheck.Test.make ~name:"disj commutative" ~count:200
        (QCheck.pair tri_arb tri_arb) (fun (a, b) ->
          Tri.disj a b = Tri.disj b a);
      QCheck.Test.make ~name:"conj associative" ~count:200
        (QCheck.triple tri_arb tri_arb tri_arb) (fun (a, b, c) ->
          Tri.conj a (Tri.conj b c) = Tri.conj (Tri.conj a b) c);
      QCheck.Test.make ~name:"double negation" ~count:200 tri_arb (fun a ->
          Tri.neg (Tri.neg a) = a);
      QCheck.Test.make ~name:"xor via and/or/not" ~count:200
        (QCheck.pair tri_arb tri_arb) (fun (a, b) ->
          Tri.xor a b
          = Tri.conj (Tri.disj a b) (Tri.neg (Tri.conj a b)));
    ]

let suite = unit_tests @ qcheck_tests
