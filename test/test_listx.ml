(** The list utilities underpinning tables and permutation probes. *)

open Cypher_util
open Test_util

let suite =
  [
    case "take and drop partition a list" (fun () ->
        let l = [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 l);
        Alcotest.(check (list int)) "drop" [ 3; 4; 5 ] (Listx.drop 2 l);
        Alcotest.(check (list int)) "take beyond" l (Listx.take 99 l);
        Alcotest.(check (list int)) "drop beyond" [] (Listx.drop 99 l);
        Alcotest.(check (list int)) "take negative" [] (Listx.take (-1) l));
    case "group_by preserves orders" (fun () ->
        let groups = Listx.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
        Alcotest.(check (list (pair int (list int))))
          "groups"
          [ (1, [ 1; 3; 5 ]); (0, [ 2; 4 ]) ]
          groups);
    case "index_of finds the first hit" (fun () ->
        Alcotest.(check (option int)) "hit" (Some 1)
          (Listx.index_of (fun x -> x > 1) [ 1; 2; 3 ]);
        Alcotest.(check (option int)) "miss" None
          (Listx.index_of (fun x -> x > 9) [ 1; 2; 3 ]));
    case "all_distinct" (fun () ->
        Alcotest.(check bool) "distinct" true (Listx.all_distinct compare [ 1; 2; 3 ]);
        Alcotest.(check bool) "dup" false (Listx.all_distinct compare [ 1; 2; 1 ]));
    case "interleave" (fun () ->
        Alcotest.(check (list int)) "sep" [ 1; 0; 2; 0; 3 ]
          (Listx.interleave 0 [ 1; 2; 3 ]);
        Alcotest.(check (list int)) "single" [ 1 ] (Listx.interleave 0 [ 1 ]));
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        QCheck.Test.make ~name:"permutation is a bijection on the bag"
          ~count:200
          QCheck.(pair small_int (list small_int))
          (fun (seed, l) ->
            List.sort compare (Listx.permutation_of_seed seed l)
            = List.sort compare l);
        QCheck.Test.make ~name:"permutation is deterministic per seed"
          ~count:200
          QCheck.(pair small_int (list small_int))
          (fun (seed, l) ->
            Listx.permutation_of_seed seed l = Listx.permutation_of_seed seed l);
        QCheck.Test.make ~name:"take n @ drop n = original" ~count:200
          QCheck.(pair small_nat (list small_int))
          (fun (n, l) -> Listx.take n l @ Listx.drop n l = l);
      ]
