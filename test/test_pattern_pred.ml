(** Pattern predicates: [exists((a)-[:T]->(b))] in expression position. *)

open Test_util
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let g =
  graph_of
    "CREATE (v:Vendor {name: 'v1'})-[:OFFERS]->(p1:Product {name: 'laptop'}),\n\
    \       (p2:Product {name: 'orphan'}),\n\
    \       (u:User {name: 'Bob'})-[:ORDERED]->(p1)"

let suite =
  [
    case "filters on relationship existence" (fun () ->
        let t =
          run_table g
            "MATCH (p:Product) WHERE exists((:Vendor)-[:OFFERS]->(p))\n\
             RETURN p.name"
        in
        Alcotest.(check (list value_testable)) "offered" [ vstr "laptop" ]
          (column t "p.name"));
    case "negated existence finds orphans" (fun () ->
        let t =
          run_table g
            "MATCH (p:Product) WHERE NOT exists((:Vendor)-[:OFFERS]->(p))\n\
             RETURN p.name"
        in
        Alcotest.(check (list value_testable)) "orphan" [ vstr "orphan" ]
          (column t "p.name"));
    case "works as a projected value" (fun () ->
        let t =
          run_table g
            "MATCH (p:Product) RETURN p.name AS n, exists((p)<-[:ORDERED]-()) \
             AS ordered ORDER BY n"
        in
        Alcotest.(check (list value_testable)) "flags"
          [ vbool true; vbool false ]
          (column t "ordered"));
    case "anchors on multiple bound variables" (fun () ->
        let t =
          run_table g
            "MATCH (u:User), (p:Product)\n\
             WHERE exists((u)-[:ORDERED]->(p))\n\
             RETURN p.name"
        in
        Alcotest.(check (list value_testable)) "pair" [ vstr "laptop" ]
          (column t "p.name"));
    case "property form of exists still works" (fun () ->
        let t =
          run_table g "MATCH (u:User) RETURN exists(u.name) AS has_name"
        in
        check_value "value form" (vbool true) (first_cell t));
    case "pattern tuples in exists" (fun () ->
        let t =
          run_table g
            "MATCH (p:Product) WHERE exists((:Vendor)-[:OFFERS]->(p), \
             (:User)-[:ORDERED]->(p)) RETURN p.name"
        in
        Alcotest.(check (list value_testable)) "both conditions"
          [ vstr "laptop" ] (column t "p.name"));
    case "respects the homomorphic matching mode" (fun () ->
        (* one edge, pattern needing two distinct edges: only the
           homomorphic regime finds an embedding *)
        let g2 = graph_of "CREATE (:A)-[:T]->(:B)" in
        let q =
          "MATCH (a:A) RETURN exists((a)-[:T]->(), ()-[:T]->()) AS e"
        in
        check_value "isomorphic" (vbool false) (first_cell (run_table g2 q));
        check_value "homomorphic" (vbool true)
          (first_cell
             (run_table
                ~config:(Config.with_match_mode Config.Homomorphic Config.revised)
                g2 q)));
    case "round-trips through the pretty-printer" (fun () ->
        let src = "MATCH (p) WHERE exists((p)-[:T]->(:X {k: 1})) RETURN p" in
        match Cypher_parser.Parser.parse_string src with
        | Error e ->
            Alcotest.failf "parse: %s" (Cypher_parser.Parser.error_to_string e)
        | Ok q -> (
            let printed = Cypher_ast.Pretty.query_to_string q in
            match Cypher_parser.Parser.parse_string printed with
            | Ok q' when q = q' -> ()
            | Ok _ -> Alcotest.failf "round-trip changed: %s" printed
            | Error e ->
                Alcotest.failf "reparse: %s"
                  (Cypher_parser.Parser.error_to_string e)));
  ]
