(** The concurrent multi-session server: snapshot-isolated reads,
    the group committer's batching and failure isolation, commit-time
    replay, the newline protocol, and the TCP front end. *)

open Cypher_graph
open Test_util
module Session = Cypher_core.Session
module Shared = Cypher_server.Shared
module Service = Cypher_server.Service
module Server = Cypher_server.Server

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

(* run one request line and return the full response *)
let req svc line = Service.handle svc line

(* the terminator of a response, e.g. "OK rows=1 version=3" *)
let terminator = function
  | [] -> Alcotest.fail "empty response"
  | lines -> List.nth lines (List.length lines - 1)

let is_ok lines =
  match terminator lines with
  | t -> String.length t >= 2 && String.sub t 0 2 = "OK"

let expect_ok name lines =
  if not (is_ok lines) then
    Alcotest.failf "%s: expected OK, got %s" name
      (String.concat " / " lines)

let expect_err name lines =
  if is_ok lines then
    Alcotest.failf "%s: expected ERR, got %s" name
      (String.concat " / " lines)

let shared_tests =
  [
    case "auto-commit updates advance the shared head" (fun () ->
        let shared = Shared.create Graph.empty in
        let a = Service.create shared in
        let b = Service.create shared in
        expect_ok "create" (req a "CREATE (:A {k: 1})");
        (* the other connection reads the committed head *)
        let lines = req b "MATCH (n:A) RETURN n.k AS k" in
        expect_ok "read" lines;
        Alcotest.(check bool) "sees the write" true
          (List.exists (fun l -> contains l "1") lines);
        let v, head = Shared.current shared in
        Alcotest.(check int) "version advanced" 1 v;
        Alcotest.(check int) "one node" 1 (Graph.node_count head));
    case "reads inside a transaction are snapshot-stable" (fun () ->
        let shared = Shared.create Graph.empty in
        let reader = Service.create shared in
        let writer = Service.create shared in
        expect_ok "seed" (req writer "CREATE (:A {k: 1})");
        expect_ok "begin" (req reader ":begin");
        let before = req reader "MATCH (n:A) RETURN count(n) AS c" in
        expect_ok "read before" before;
        (* a concurrent commit lands while the reader's tx is open *)
        expect_ok "concurrent write" (req writer "CREATE (:A {k: 2})");
        let during = req reader "MATCH (n:A) RETURN count(n) AS c" in
        (* byte-stable: the pinned snapshot is immune to the commit *)
        Alcotest.(check (list string)) "snapshot unchanged" before during;
        expect_ok "commit" (req reader ":commit");
        let after = req reader "MATCH (n:A) RETURN count(n) AS c" in
        Alcotest.(check bool) "post-commit read sees the write" true
          (List.exists (fun l -> contains l "2") after));
    case "commit replays buffered updates onto a moved head" (fun () ->
        let shared = Shared.create Graph.empty in
        let a = Service.create shared in
        let b = Service.create shared in
        expect_ok "a begin" (req a ":begin");
        expect_ok "a update" (req a "CREATE (:FromA)");
        (* b commits first: a's pinned base is now stale *)
        expect_ok "b write" (req b "CREATE (:FromB)");
        expect_ok "a commit" (req a ":commit");
        let _, head = Shared.current shared in
        let count label =
          match Cypher_core.Api.run_string head
                  ("MATCH (n:" ^ label ^ ") RETURN n")
          with
          | Ok o -> Cypher_table.Table.row_count o.Cypher_core.Api.table
          | Error _ -> -1
        in
        (* serial order b; a — both effects land *)
        Alcotest.(check int) "b's write survived" 1 (count "FromB");
        Alcotest.(check int) "a's write replayed" 1 (count "FromA"));
    case "nested transactions fold into the outermost commit" (fun () ->
        let shared = Shared.create Graph.empty in
        let a = Service.create shared in
        expect_ok "begin" (req a ":begin");
        expect_ok "outer" (req a "CREATE (:Outer)");
        expect_ok "begin inner" (req a ":begin");
        expect_ok "inner" (req a "CREATE (:Inner)");
        expect_ok "inner commit" (req a ":commit");
        (* nothing is published until the outermost commit *)
        Alcotest.(check int) "head still empty" 0
          (Graph.node_count (snd (Shared.current shared)));
        expect_ok "outer commit" (req a ":commit");
        Alcotest.(check int) "both land at once" 2
          (Graph.node_count (snd (Shared.current shared)));
        Alcotest.(check int) "one version step" 1
          (fst (Shared.current shared)));
    case "rollback publishes nothing and journals nothing" (fun () ->
        let flushed = ref 0 in
        let shared =
          Shared.create ~sink:(fun _ -> incr flushed) Graph.empty
        in
        let a = Service.create shared in
        expect_ok "begin" (req a ":begin");
        expect_ok "update" (req a "CREATE (:Gone)");
        expect_ok "rollback" (req a ":rollback");
        Alcotest.(check int) "head empty" 0
          (Graph.node_count (snd (Shared.current shared)));
        Alcotest.(check int) "sink untouched" 0 !flushed;
        (* the session is reusable afterwards *)
        expect_ok "next write" (req a "CREATE (:Kept)");
        Alcotest.(check int) "later commit lands" 1
          (Graph.node_count (snd (Shared.current shared))));
    case "group commit batches concurrent commits into one flush"
      (fun () ->
        (* a sink that lingers keeps the first leader in flight while
           the other writers enqueue, so the second flush must carry
           the rest of them as one batch *)
        let shared =
          Shared.create ~sink:(fun _ -> Thread.delay 0.05) Graph.empty
        in
        let writers = 8 in
        let threads =
          List.init writers (fun i ->
              Thread.create
                (fun () ->
                  let svc = Service.create shared in
                  ignore
                    (req svc (Printf.sprintf "CREATE (:W {i: %d})" i)))
                ())
        in
        List.iter Thread.join threads;
        let s = Shared.stats shared in
        Alcotest.(check int) "every commit landed" writers s.Shared.commits;
        Alcotest.(check int) "all nodes present" writers
          (Graph.node_count (snd (Shared.current shared)));
        Alcotest.(check bool)
          (Printf.sprintf "flushes (%d) below commits" s.Shared.flushes)
          true
          (s.Shared.flushes < s.Shared.commits);
        Alcotest.(check bool)
          (Printf.sprintf "some batch grouped (max %d)" s.Shared.max_batch)
          true
          (s.Shared.max_batch > 1));
    case "batching off degenerates to one flush per commit" (fun () ->
        let shared = Shared.create ~batching:false
            ~sink:(fun _ -> ()) Graph.empty in
        let threads =
          List.init 4 (fun i ->
              Thread.create
                (fun () ->
                  let svc = Service.create shared in
                  ignore
                    (req svc (Printf.sprintf "CREATE (:W {i: %d})" i)))
                ())
        in
        List.iter Thread.join threads;
        let s = Shared.stats shared in
        Alcotest.(check int) "flush per commit" s.Shared.commits
          s.Shared.flushes;
        Alcotest.(check int) "no grouping" 1 s.Shared.max_batch);
    case "a failing flush rolls back only its batch" (fun () ->
        let poisoned = ref true in
        let sink _ = if !poisoned then failwith "disk full" in
        let shared = Shared.create ~sink Graph.empty in
        let a = Service.create shared in
        expect_err "poisoned commit" (req a "CREATE (:Lost)");
        let s = Shared.stats shared in
        Alcotest.(check int) "flush failure counted" 1
          s.Shared.flush_failures;
        Alcotest.(check int) "nothing committed" 0 s.Shared.commits;
        Alcotest.(check int) "head unchanged" 0
          (Graph.node_count (snd (Shared.current shared)));
        Alcotest.(check int) "version unchanged" 0
          (fst (Shared.current shared));
        (* the connection and the committer both survive the failure *)
        poisoned := false;
        expect_ok "healed commit" (req a "CREATE (:Kept)");
        Alcotest.(check int) "later commit lands" 1
          (Graph.node_count (snd (Shared.current shared))));
    case "a member whose statement fails aborts alone" (fun () ->
        let shared = Shared.create Graph.empty in
        let a = Service.create shared in
        expect_ok "good write" (req a "CREATE (:A {k: 1})");
        (* an execution-time error: the committer must drop this member
           without disturbing the head *)
        expect_err "bad write" (req a "CREATE (:X {k: (1 / 0)})");
        Alcotest.(check int) "head keeps the good write" 1
          (Graph.node_count (snd (Shared.current shared)));
        Alcotest.(check int) "version only bumped once" 1
          (fst (Shared.current shared)));
    case "concurrent snapshot readers overlap a writer cleanly" (fun () ->
        (* tier-1 smoke for the read path: several reader threads pin
           snapshots and re-read them while a writer thread commits;
           every reader must see a monotone, self-consistent count *)
        let shared = Shared.create Graph.empty in
        let stop = ref false in
        let failures = ref [] in
        let lock = Mutex.create () in
        let record_failure m =
          Mutex.lock lock;
          failures := m :: !failures;
          Mutex.unlock lock
        in
        let reader () =
          let svc = Service.create shared in
          while not !stop do
            ignore (req svc ":begin");
            let first = req svc "MATCH (n:W) RETURN count(n) AS c" in
            let second = req svc "MATCH (n:W) RETURN count(n) AS c" in
            if first <> second then
              record_failure
                (Printf.sprintf "snapshot moved: %s vs %s"
                   (String.concat "/" first)
                   (String.concat "/" second));
            ignore (req svc ":rollback")
          done
        in
        let readers = List.init 3 (fun _ -> Thread.create reader ()) in
        let writer = Service.create shared in
        for i = 1 to 20 do
          expect_ok "write" (req writer (Printf.sprintf "CREATE (:W {i: %d})" i))
        done;
        stop := true;
        List.iter Thread.join readers;
        (match !failures with
        | [] -> ()
        | m :: _ -> Alcotest.fail m);
        Alcotest.(check int) "all writes landed" 20
          (Graph.node_count (snd (Shared.current shared))));
  ]

(* ------------------------------------------------------------------ *)
(* TCP front end                                                      *)
(* ------------------------------------------------------------------ *)

let with_server f =
  let shared = Shared.create Graph.empty in
  let server =
    match Server.start ~make_service:(fun () -> Service.create shared) () with
    | Ok s -> s
    | Error m -> Alcotest.fail m
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () ->
      f shared (Server.port server))

let connect port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (sock, Unix.in_channel_of_descr sock, Unix.out_channel_of_descr sock)

let send oc line =
  output_string oc (line ^ "\n");
  flush oc

(* read payload lines until the OK/ERR terminator *)
let rec read_response ic acc =
  let line = input_line ic in
  let starts p =
    String.length line >= String.length p
    && String.sub line 0 (String.length p) = p
  in
  if starts "OK" || starts "ERR" then List.rev (line :: acc)
  else read_response ic (line :: acc)

let tcp_tests =
  [
    case "two TCP clients: isolation and visibility end to end" (fun () ->
        with_server (fun _shared port ->
            let sa, ica, oca = connect port in
            let sb, icb, ocb = connect port in
            Fun.protect
              ~finally:(fun () ->
                (try Unix.close sa with _ -> ());
                try Unix.close sb with _ -> ())
              (fun () ->
                send oca ":ping";
                expect_ok "ping" (read_response ica []);
                (* a opens a tx and writes; b must not see it *)
                send oca ":begin";
                expect_ok "begin" (read_response ica []);
                send oca "CREATE (:T {k: 1})";
                expect_ok "tx write" (read_response ica []);
                send ocb "MATCH (n:T) RETURN count(n) AS c";
                let b_read = read_response icb [] in
                expect_ok "b read" b_read;
                Alcotest.(check bool) "uncommitted write invisible" true
                  (List.exists (fun l -> contains l "0") b_read);
                (* after a commits, b sees it *)
                send oca ":commit";
                expect_ok "commit" (read_response ica []);
                send ocb "MATCH (n:T) RETURN count(n) AS c";
                let b_after = read_response icb [] in
                Alcotest.(check bool) "committed write visible" true
                  (List.exists (fun l -> contains l "1") b_after);
                send oca ":quit";
                expect_ok "quit" (read_response ica []))));
    case "parse errors answer ERR and leave the connection usable"
      (fun () ->
        with_server (fun _shared port ->
            let s, ic, oc = connect port in
            Fun.protect
              ~finally:(fun () -> try Unix.close s with _ -> ())
              (fun () ->
                send oc "MATCH (n RETURN n";
                expect_err "parse error" (read_response ic []);
                send oc "RETURN 1 AS one";
                expect_ok "still alive" (read_response ic []))));
  ]

(* ------------------------------------------------------------------ *)
(* Oracle 10 smoke                                                    *)
(* ------------------------------------------------------------------ *)

let oracle_tests =
  [
    case "oracle 10 smoke: 60 concurrent workloads" (fun () ->
        for i = 0 to 59 do
          let rng = Cypher_fuzz.Rng.make (20260809 + i) in
          let g = Cypher_fuzz.Gen.graph rng in
          let actors = Cypher_fuzz.Gen.actors rng in
          match Cypher_fuzz.Oracles.concurrent g actors with
          | Ok () -> ()
          | Error d -> Alcotest.failf "seed %d: %s" (20260809 + i) d
        done);
  ]

let suite = shared_tests @ tcp_tests @ oracle_tests
