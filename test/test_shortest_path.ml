(** shortestPath / allShortestPaths: BFS between bound endpoints. *)

open Test_util
module Errors = Cypher_core.Errors

(* a diamond with a long detour:
   a -> b1 -> c, a -> b2 -> c (two 2-hop routes), a -> d -> e -> c (3 hops),
   plus a direct back-edge c -> a *)
let g =
  graph_of
    "CREATE (a:N {name: 'a'}), (b1:N {name: 'b1'}), (b2:N {name: 'b2'}),\n\
    \       (c:N {name: 'c'}), (d:N {name: 'd'}), (e:N {name: 'e'})\n\
     WITH a, b1, b2, c, d, e\n\
     CREATE (a)-[:T]->(b1), (b1)-[:T]->(c), (a)-[:T]->(b2), (b2)-[:T]->(c),\n\
    \       (a)-[:T]->(d), (d)-[:T]->(e), (e)-[:T]->(c), (c)-[:T]->(a)"

let suite =
  [
    case "finds a shortest path" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             RETURN length(shortestPath((a)-[:T*]->(c))) AS l"
        in
        check_value "two hops" (vint 2) (first_cell t));
    case "allShortestPaths finds every minimal route" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             RETURN size(allShortestPaths((a)-[:T*]->(c))) AS n"
        in
        check_value "two routes" (vint 2) (first_cell t));
    case "respects direction" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             RETURN length(shortestPath((c)-[:T*]->(a))) AS l"
        in
        check_value "back edge" (vint 1) (first_cell t));
    case "undirected search" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             RETURN length(shortestPath((a)-[:T*]-(c))) AS l"
        in
        (* the undirected view has the 1-hop c->a edge available *)
        check_value "one hop" (vint 1) (first_cell t));
    case "no path yields null / empty list" (fun () ->
        let g2 = graph_of "CREATE (x:X), (y:Y)" in
        let t =
          run_table g2
            "MATCH (x:X), (y:Y) RETURN shortestPath((x)-[:T*]->(y)) AS p,\n\
             allShortestPaths((x)-[:T*]->(y)) AS ps"
        in
        let row = List.hd (Cypher_table.Table.rows t) in
        check_value "null" vnull (Cypher_table.Record.find row "p");
        check_value "empty" (vlist []) (Cypher_table.Record.find row "ps"));
    case "zero-length when endpoints coincide and range admits it" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}) RETURN length(shortestPath((a)-[:T*0..]->(a))) AS l"
        in
        check_value "zero" (vint 0) (first_cell t));
    case "type filter applies" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             RETURN shortestPath((a)-[:NOPE*]->(c)) AS p"
        in
        check_value "null" vnull (first_cell t));
    case "upper bound limits the search" (fun () ->
        let g2 = graph_of "CREATE (:P {k: 1})-[:T]->(:P {k: 2})-[:T]->(:P {k: 3})" in
        let t =
          run_table g2
            "MATCH (x:P {k: 1}), (z:P {k: 3})\n\
             RETURN shortestPath((x)-[:T*..1]->(z)) AS p"
        in
        check_value "too far" vnull (first_cell t));
    case "path components are usable" (fun () ->
        let t =
          run_table g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             WITH shortestPath((a)-[:T*]->(c)) AS p\n\
             RETURN [n IN nodes(p) | n.name][0] AS first, size(relationships(p)) AS m"
        in
        let row = List.hd (Cypher_table.Table.rows t) in
        check_value "starts at a" (vstr "a") (Cypher_table.Record.find row "first");
        check_value "two rels" (vint 2) (Cypher_table.Record.find row "m"));
    case "unbound endpoints are an error" (fun () ->
        match run_err g "RETURN shortestPath((a)-[:T*]->(b)) AS p" with
        | Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "non-var-length patterns are rejected" (fun () ->
        match
          run_err g
            "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
             RETURN shortestPath((a)-[:T]->(c)) AS p"
        with
        | Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "explicit and open length ranges keep the range guard" (fun () ->
        (* regression for the dispatch invariant behind the matcher's
           former [assert false]: every range spelling that reaches the
           BFS carries its bounds *)
        let len range expected =
          let t =
            run_table g
              (Printf.sprintf
                 "MATCH (a:N {name: 'a'}), (c:N {name: 'c'})\n\
                  RETURN length(shortestPath((a)-[:T%s]->(c))) AS l"
                 range)
          in
          check_value (range ^ " hops") expected (first_cell t)
        in
        len "*" (vint 2);
        len "*1.." (vint 2);
        len "*..5" (vint 2);
        (* the shortest route has 2 hops; a [3,3] window excludes it *)
        len "*3..3" vnull);
  ]
