(** Pretty-printer: parse ∘ print = identity, checked on hand-written
    queries and on randomly generated ASTs. *)

open Cypher_ast.Ast
module Pretty = Cypher_ast.Pretty
module Parser = Cypher_parser.Parser
open Test_util

let roundtrip_query src =
  match Parser.parse_string src with
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)
  | Ok q -> (
      let printed = Pretty.query_to_string q in
      match Parser.parse_string printed with
      | Error e ->
          Alcotest.failf "reparse of %S failed: %s" printed
            (Parser.error_to_string e)
      | Ok q' ->
          if q <> q' then
            Alcotest.failf "round-trip changed the AST:\n%s\n~>\n%s" src printed)

let hand_written =
  [
    "MATCH (p:Product)<-[:OFFERS]-(v:Vendor)-[:OFFERS]->(q:Product) WHERE \
     p.name = 'laptop' RETURN v";
    "MATCH (u:User {id: 89}) CREATE (u)-[:ORDERED]->(:New_Product {id: 0})";
    "MATCH (p:New_Product {id: 0}) SET p:Product, p.id = 120, p.name = \
     'smartphone' REMOVE p:New_Product";
    "MATCH (p:Product {id: 120}) DETACH DELETE p";
    "MATCH (p:Product) MERGE (p)<-[:OFFERS]-(v:Vendor) RETURN p, v";
    "MERGE ALL (:User {id: cid})-[:ORDERED]->(:Product {id: pid})";
    "MERGE SAME (:User {id: bid})-[:ORDERED]->(:Product {id: \
     pid})<-[:OFFERS]-(:User {id: sid})";
    "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC SKIP 1 LIMIT 2";
    "UNWIND [1, 2, 3] AS x WITH x WHERE x > 1 RETURN count(*) AS n";
    "MATCH (a)-[r:T*1..3]->(b) RETURN r";
    "FOREACH (x IN [1, 2] | SET n.a = x)";
    "RETURN 1 AS x UNION ALL RETURN 2 AS x";
    "MATCH (n) RETURN CASE n.x WHEN 1 THEN 'one' ELSE 'many' END AS c";
    "MATCH (n) WHERE n.name STARTS WITH 'a' AND NOT n.x IS NULL RETURN \
     [y IN n.list WHERE y > 0 | y * 2] AS ys";
    "MERGE (n:X) ON CREATE SET n.c = 1 ON MATCH SET n.m = 2";
    "MATCH p = (a)-[:T]->(b) RETURN nodes(p), relationships(p)";
    (* string literals with quotes and control characters must survive
       the print → re-parse round trip *)
    "RETURN 'it\\'s a \\\\ backslash' AS s";
    "RETURN 'tab\\tnl\\ncr\\rbs\\bff\\fvt\\u000b' AS s";
    "RETURN 'unicode \\u00e9\\u20ac' AS s";
  ]

let unit_tests =
  List.mapi
    (fun i src -> case (Printf.sprintf "round-trip %d" i) (fun () -> roundtrip_query src))
    hand_written

(* ------------------------------------------------------------------ *)
(* Random ASTs                                                        *)
(* ------------------------------------------------------------------ *)

let gen_name = QCheck.Gen.(oneofl [ "a"; "b"; "n"; "m"; "x42"; "total" ])
let gen_label = QCheck.Gen.(oneofl [ "User"; "Product"; "Vendor"; "X" ])
let gen_key = QCheck.Gen.(oneofl [ "id"; "name"; "x"; "y" ])

let gen_lit =
  QCheck.Gen.(
    oneof
      [
        return L_null;
        map (fun b -> L_bool b) bool;
        map (fun i -> L_int i) (int_range (-100) 100);
        map
          (fun s -> L_string s)
          (oneofl
             [ "a"; "hello"; "x y"; "it's"; "a\nb"; "q\"q"; "\011\012\r\b" ]);
      ])

let gen_expr =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self n ->
            if n <= 0 then
              oneof
                [
                  map (fun l -> Lit l) gen_lit;
                  map (fun v -> Var v) gen_name;
                  map (fun p -> Param p) gen_name;
                ]
            else
              let sub = self (n / 2) in
              oneof
                [
                  map (fun l -> Lit l) gen_lit;
                  map (fun v -> Var v) gen_name;
                  map2 (fun e k -> Prop (e, k)) (map (fun v -> Var v) gen_name) gen_key;
                  map2 (fun a b -> And (a, b)) sub sub;
                  map2 (fun a b -> Or (a, b)) sub sub;
                  map (fun a -> Not a) sub;
                  map2 (fun a b -> Cmp (Eq, a, b)) sub sub;
                  map2 (fun a b -> Cmp (Lt, a, b)) sub sub;
                  map2 (fun a b -> Bin (Add, a, b)) sub sub;
                  map2 (fun a b -> Bin (Mul, a, b)) sub sub;
                  map (fun es -> List_lit es) (list_size (int_bound 3) sub);
                  map (fun e -> Is_null e) sub;
                  map2 (fun a b -> In_list (a, b)) sub sub;
                  map (fun e -> Fn ("size", [ e ])) sub;
                ])
          (min size 5)))

let gen_props = QCheck.Gen.(list_size (int_bound 2) (pair gen_key gen_expr))

let gen_node_pat =
  QCheck.Gen.(
    map3
      (fun var labels props -> { np_var = var; np_labels = labels; np_props = props })
      (opt gen_name)
      (list_size (int_bound 2) gen_label)
      gen_props)

let gen_rel_pat ~directed =
  QCheck.Gen.(
    let gen_dir = if directed then oneofl [ Out; In ] else oneofl [ Out; In; Undirected ] in
    map3
      (fun var dir props ->
        { rp_var = var; rp_types = [ "T" ]; rp_props = props; rp_dir = dir; rp_range = None })
      (opt gen_name) gen_dir gen_props)

let gen_pattern ~directed =
  QCheck.Gen.(
    map2
      (fun start steps -> { pat_var = None; pat_start = start; pat_steps = steps })
      gen_node_pat
      (list_size (int_bound 2) (pair (gen_rel_pat ~directed) gen_node_pat)))

let gen_clause =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun patterns where -> Match { optional = false; patterns; where })
          (list_size (int_range 1 2) (gen_pattern ~directed:false))
          (opt gen_expr);
        map (fun ps -> Create ps) (list_size (int_range 1 2) (gen_pattern ~directed:true));
        map
          (fun items -> Set items)
          (list_size (int_range 1 3)
             (map3
                (fun v k e -> Set_prop (Var v, k, e))
                gen_name gen_key gen_expr));
        map (fun es -> Delete { detach = true; targets = es })
          (list_size (int_range 1 2) (map (fun v -> Var v) gen_name));
        map2 (fun source alias -> Unwind { source; alias }) gen_expr gen_name;
        map2
          (fun p oc -> Merge { mode = Merge_all; patterns = [ p ]; on_create = oc; on_match = [] })
          (gen_pattern ~directed:true)
          (list_size (int_bound 1)
             (map3 (fun v k e -> Set_prop (Var v, k, e)) gen_name gen_key gen_expr));
      ])

let gen_query =
  QCheck.Gen.(
    map2
      (fun clauses items ->
        {
          clauses =
            clauses
            @ [
                Return
                  {
                    default_projection with
                    proj_items =
                      List.map (fun (e, a) -> { item_expr = e; item_alias = Some a }) items;
                  };
              ];
          union = None;
        })
      (list_size (int_bound 3) gen_clause)
      (list_size (int_range 1 2) (pair gen_expr (oneofl [ "o1"; "o2"; "o3" ]))))

let arb_query =
  QCheck.make ~print:Pretty.query_to_string gen_query

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"parse (print q) = q on random ASTs" ~count:300
         arb_query (fun q ->
           (* distinct aliases guaranteed by construction except when both
              items picked the same; skip those *)
           let aliases =
             List.filter_map
               (fun c ->
                 match c with
                 | Return p -> Some (List.map (fun i -> i.item_alias) p.proj_items)
                 | _ -> None)
               q.clauses
           in
           let distinct l = List.sort_uniq compare l = List.sort compare l in
           QCheck.assume (List.for_all distinct aliases);
           let printed = Pretty.query_to_string q in
           match Parser.parse_string printed with
           | Error e ->
               QCheck.Test.fail_reportf "reparse failed on %S: %s" printed
                 (Parser.error_to_string e)
           | Ok q' ->
               if q = q' then true
               else
                 QCheck.Test.fail_reportf "round-trip changed AST for %S" printed));
  ]

let suite = unit_tests @ qcheck_tests
