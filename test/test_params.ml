(** Parameterized queries, prepared statements, and the session plan
    cache.

    Covers the `$param` surface end-to-end: binding resolution in every
    clause position (WHERE, property maps, FOREACH, MERGE, SKIP/LIMIT),
    the parameter/variable namespace split, the strict pre-execution
    bound check with source positions, the {!Api.prepare} /
    {!Api.execute} API, the session LRU (hits, misses, eviction order,
    capacity, normalization, config fingerprinting), invalidation on
    property-index registration (no stale plan may be served), and the
    journaling of parameter bindings through the WAL — including replay
    after a simulated crash. *)

open Cypher_graph
open Cypher_util.Maps
open Test_util
module Session = Cypher_core.Session
module Plan_cache = Cypher_core.Plan_cache
module Config = Cypher_core.Config
module Api = Cypher_core.Api
module Errors = Cypher_core.Errors
module Wal = Cypher_storage.Wal
module Recovery = Cypher_storage.Recovery

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains name sub s =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S appears in %S" name sub s)
    true (contains ~sub s)

let params_of l =
  List.fold_left (fun m (k, v) -> Smap.add k v m) Smap.empty l

let config_with ps = Config.with_params (params_of ps) Config.revised

let run_ok s src =
  match Session.run s src with
  | Ok r -> r
  | Error e -> Alcotest.failf "session run failed: %s" (Errors.to_string e)

(* ------------------------------------------------------------------ *)
(* Parameter evaluation across clause positions                       *)
(* ------------------------------------------------------------------ *)

let binding_tests =
  [
    case "params reach WHERE, property maps and RETURN" (fun () ->
        let config =
          config_with [ ("id", vint 7); ("name", vstr "ada") ]
        in
        let g =
          run_graph ~config Graph.empty
            "CREATE (:User {id: $id, name: $name})"
        in
        let t =
          run_table ~config g
            "MATCH (u:User) WHERE u.id = $id RETURN u.name AS n"
        in
        check_value "name" (vstr "ada") (first_cell t));
    case "params inside FOREACH bodies" (fun () ->
        let config = config_with [ ("xs", vlist [ vint 1; vint 2; vint 3 ]);
                                   ("off", vint 10) ] in
        let g =
          run_graph ~config Graph.empty
            "FOREACH (i IN $xs | CREATE (:N {v: i + $off}))"
        in
        let t = run_table ~config g "MATCH (n:N) RETURN n.v AS v ORDER BY v" in
        Alcotest.(check (list string))
          "values" [ "11"; "12"; "13" ]
          (List.map Value.to_string (column t "v")));
    case "params inside MERGE patterns and ON CREATE" (fun () ->
        let config = config_with [ ("id", vint 3) ] in
        let g =
          run_graph ~config Graph.empty
            "MERGE ALL (n:P {id: $id}) ON CREATE SET n.fresh = true"
        in
        (* second MERGE with the same binding must match, not create *)
        let g' =
          run_graph ~config g
            "MERGE ALL (n:P {id: $id}) ON CREATE SET n.dup = true"
        in
        Alcotest.(check int) "one node" 1 (Graph.node_count g');
        let t = run_table ~config g' "MATCH (n:P) RETURN n.dup AS d" in
        check_value "no ON CREATE on match" vnull (first_cell t));
    case "SKIP and LIMIT accept parameters" (fun () ->
        let config = config_with [ ("s", vint 2); ("l", vint 3) ] in
        let t =
          run_table ~config Graph.empty
            "UNWIND range(1, 10) AS x RETURN x SKIP $s LIMIT $l"
        in
        Alcotest.(check (list string))
          "window" [ "3"; "4"; "5" ]
          (List.map Value.to_string (column t "x")));
    case "parameters and variables are separate namespaces" (fun () ->
        let config = config_with [ ("p", vint 10) ] in
        let t =
          run_table ~config Graph.empty "WITH 5 AS p RETURN $p + p AS s"
        in
        check_value "param plus variable" (vint 15) (first_cell t));
    case "an alias may shadow a parameter's name without capturing it"
      (fun () ->
        let config = config_with [ ("xs", vlist [ vint 1; vint 2 ]) ] in
        let t =
          run_table ~config Graph.empty "UNWIND $xs AS xs RETURN xs + $xs[0] AS y"
        in
        Alcotest.(check (list string))
          "rows" [ "2"; "3" ]
          (List.map Value.to_string (column t "y")));
  ]

(* ------------------------------------------------------------------ *)
(* The strict pre-execution bound check, with source positions        *)
(* ------------------------------------------------------------------ *)

let unbound_tests =
  [
    case "unbound parameters are rejected before execution" (fun () ->
        let e = run_err Graph.empty "RETURN $nope" in
        check_contains "names the parameter" "$nope" (Errors.to_string e);
        check_contains "carries the position" "line 1, column 8"
          (Errors.to_string e));
    case "the position is the $'s own, deep in the statement" (fun () ->
        let e =
          run_err Graph.empty "MATCH (n) WHERE n.id = $missing RETURN n"
        in
        check_contains "position" "line 1, column 24" (Errors.to_string e));
    case "the check fires even when no row would evaluate the parameter"
      (fun () ->
        (* no :Ghost nodes exist, so lazy evaluation would never touch
           $p — the strict check must still reject the statement *)
        let e = run_err Graph.empty "MATCH (g:Ghost) WHERE g.x = $p RETURN g" in
        check_contains "rejected up front" "$p" (Errors.to_string e));
    case "EXPLAIN skips the bound check" (fun () ->
        match Api.run_string_full Graph.empty "EXPLAIN RETURN $later" with
        | Ok r -> Alcotest.(check bool) "has a plan" true (r.Api.r_plan <> None)
        | Error e ->
            Alcotest.failf "EXPLAIN rejected: %s" (Errors.to_string e));
  ]

(* ------------------------------------------------------------------ *)
(* prepare / execute                                                  *)
(* ------------------------------------------------------------------ *)

let prepare_ok ?config src =
  match Api.prepare ?config src with
  | Ok p -> p
  | Error e -> Alcotest.failf "prepare failed: %s" (Errors.to_string e)

let execute_ok p ps g =
  match Api.execute p (params_of ps) g with
  | Ok o -> o
  | Error e -> Alcotest.failf "execute failed: %s" (Errors.to_string e)

let prepared_tests =
  [
    case "prepare once, execute under fresh bindings" (fun () ->
        let p = prepare_ok "CREATE (n:K {v: $x}) RETURN n.v AS v" in
        let o1 = execute_ok p [ ("x", vint 1) ] Graph.empty in
        check_value "first" (vint 1) (first_cell o1.Api.table);
        let o2 = execute_ok p [ ("x", vint 2) ] o1.Api.graph in
        check_value "rebound" (vint 2) (first_cell o2.Api.table);
        Alcotest.(check int) "both applied" 2 (Graph.node_count o2.Api.graph));
    case "prepared_params reports names and positions" (fun () ->
        let p = prepare_ok "MATCH (u {id: $uid}) WHERE u.x > $min RETURN u" in
        Alcotest.(check (list (pair string (pair int int))))
          "first-occurrence order"
          [ ("uid", (1, 15)); ("min", (1, 34)) ]
          (Api.prepared_params p));
    case "executing without a binding fails with the span" (fun () ->
        let p = prepare_ok "RETURN $a + $b AS s" in
        match Api.execute p (params_of [ ("a", vint 1) ]) Graph.empty with
        | Ok _ -> Alcotest.fail "unbound $b must be rejected"
        | Error e ->
            check_contains "names $b" "$b" (Errors.to_string e);
            check_contains "position" "line 1, column 13" (Errors.to_string e));
    case "execute bindings override preparation-config bindings" (fun () ->
        let p =
          prepare_ok ~config:(config_with [ ("x", vint 1) ]) "RETURN $x AS x"
        in
        let o = execute_ok p [ ("x", vint 99) ] Graph.empty in
        check_value "override wins" (vint 99) (first_cell o.Api.table);
        (* and with no explicit binding the preparation config's is used *)
        let o' = execute_ok p [] Graph.empty in
        check_value "config binding" (vint 1) (first_cell o'.Api.table));
    case "a prepared statement stays correct after index registration"
      (fun () ->
        let g =
          run_graph Graph.empty
            "UNWIND range(1, 50) AS i CREATE (:User {id: i})"
        in
        (* prepared with the binding so EXPLAIN can anchor on it *)
        let p =
          prepare_ok
            ~config:(config_with [ ("uid", vint 17) ])
            "MATCH (u:User {id: $uid}) RETURN u.id AS id"
        in
        let o1 = execute_ok p [ ("uid", vint 17) ] g in
        check_value "before index" (vint 17) (first_cell o1.Api.table);
        (* registering the index changes the optimal plan; the memoized
           plan must not survive the fingerprint change *)
        let g' = Graph.add_prop_index ~label:"User" ~key:"id" g in
        check_contains "plan now uses the index" "prop index"
          (Api.prepared_plan p g');
        let o2 = execute_ok p [ ("uid", vint 17) ] g' in
        check_value "after index" (vint 17) (first_cell o2.Api.table);
        Alcotest.(check int) "one row" 1 (Cypher_table.Table.row_count o2.Api.table));
  ]

(* ------------------------------------------------------------------ *)
(* The LRU itself                                                     *)
(* ------------------------------------------------------------------ *)

let lru_tests =
  [
    case "eviction follows recency, not insertion" (fun () ->
        let c : int Plan_cache.t = Plan_cache.create 2 in
        Plan_cache.add c "a" 1;
        Plan_cache.add c "b" 2;
        (* touch a: b becomes the LRU entry *)
        Alcotest.(check (option int)) "a hits" (Some 1) (Plan_cache.find c "a");
        Plan_cache.add c "c" 3;
        Alcotest.(check (option int)) "b evicted" None (Plan_cache.peek c "b");
        Alcotest.(check (option int)) "a kept" (Some 1) (Plan_cache.peek c "a");
        Alcotest.(check (option int)) "c kept" (Some 3) (Plan_cache.peek c "c");
        let s = Plan_cache.stats c in
        Alcotest.(check int) "one eviction" 1 s.Plan_cache.evictions);
    case "replacing a key never evicts" (fun () ->
        let c : int Plan_cache.t = Plan_cache.create 2 in
        Plan_cache.add c "a" 1;
        Plan_cache.add c "b" 2;
        Plan_cache.add c "a" 10;
        Alcotest.(check int) "still two" 2 (Plan_cache.length c);
        Alcotest.(check (option int)) "replaced" (Some 10) (Plan_cache.peek c "a");
        Alcotest.(check int) "no evictions" 0
          (Plan_cache.stats c).Plan_cache.evictions);
    case "capacity 0 stores nothing" (fun () ->
        let c : int Plan_cache.t = Plan_cache.create 0 in
        Plan_cache.add c "a" 1;
        Alcotest.(check int) "empty" 0 (Plan_cache.length c);
        Alcotest.(check (option int)) "miss" None (Plan_cache.find c "a");
        Alcotest.(check int) "one miss" 1 (Plan_cache.stats c).Plan_cache.misses);
    case "invalidate empties and counts once" (fun () ->
        let c : int Plan_cache.t = Plan_cache.create 4 in
        Plan_cache.add c "a" 1;
        Plan_cache.add c "b" 2;
        Plan_cache.invalidate c;
        Alcotest.(check int) "empty" 0 (Plan_cache.length c);
        Alcotest.(check int) "counted" 1
          (Plan_cache.stats c).Plan_cache.invalidations);
  ]

(* ------------------------------------------------------------------ *)
(* The session statement cache                                        *)
(* ------------------------------------------------------------------ *)

let cache_tests =
  [
    case "repeat statements hit; distinct statements miss" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "CREATE (:B)");
        let st = Session.cache_stats s in
        Alcotest.(check int) "hits" 1 st.Plan_cache.hits;
        Alcotest.(check int) "misses" 2 st.Plan_cache.misses);
    case "normalization: whitespace and trailing ; share one entry"
      (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "  CREATE (:A);  ");
        let st = Session.cache_stats s in
        Alcotest.(check int) "hit" 1 st.Plan_cache.hits);
    case "rebinding parameters keeps the cache warm" (fun () ->
        let s = Session.create ~config:(config_with [ ("v", vint 1) ]) Graph.empty in
        ignore (run_ok s "CREATE (:A {v: $v})");
        Session.set_config s (config_with [ ("v", vint 2) ]);
        ignore (run_ok s "CREATE (:A {v: $v})");
        let st = Session.cache_stats s in
        Alcotest.(check int) "hit despite rebinding" 1 st.Plan_cache.hits;
        let t = run_ok s "MATCH (a:A) RETURN a.v AS v ORDER BY v" in
        Alcotest.(check (list string))
          "both values applied" [ "1"; "2" ]
          (List.map Value.to_string (column t.Api.r_table "v")));
    case "changing a planning-relevant config field invalidates" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:A)");
        Session.set_config s
          (Config.with_match_mode Config.Homomorphic (Session.config s));
        ignore (run_ok s "CREATE (:A)");
        let st = Session.cache_stats s in
        Alcotest.(check int) "no hit across the fingerprint change" 0
          st.Plan_cache.hits;
        Alcotest.(check int) "invalidated once" 1 st.Plan_cache.invalidations);
    case "the configured capacity bounds the cache (LRU order)" (fun () ->
        let config = Config.with_plan_cache_capacity 2 Config.revised in
        let s = Session.create ~config Graph.empty in
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "CREATE (:B)");
        ignore (run_ok s "CREATE (:A)");
        (* :A is now the most recent; compiling a third statement evicts
           the :B entry *)
        ignore (run_ok s "CREATE (:C)");
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "CREATE (:B)");
        let st = Session.cache_stats s in
        (* hits: 2nd :A, 3rd :A; misses: first :A, :B, :C, re-run :B *)
        Alcotest.(check int) "hits" 2 st.Plan_cache.hits;
        Alcotest.(check int) "misses" 4 st.Plan_cache.misses;
        Alcotest.(check int) "evictions" 2 st.Plan_cache.evictions);
    case "EXPLAIN reports plan cache status" (fun () ->
        let s = Session.create Graph.empty in
        let r1 = run_ok s "EXPLAIN MATCH (n) RETURN n" in
        let r2 = run_ok s "EXPLAIN MATCH (n) RETURN n" in
        let plan r =
          match r.Api.r_plan with Some p -> p | None -> Alcotest.fail "no plan"
        in
        check_contains "first is a miss" "plan cache: miss" (plan r1);
        check_contains "second is a hit" "plan cache: hit" (plan r2));
    case "index registration invalidates: no stale plan is served"
      (fun () ->
        let s =
          Session.create
            ~config:(config_with [ ("uid", vint 17) ])
            (run_graph Graph.empty
               "UNWIND range(1, 50) AS i CREATE (:User {id: i})")
        in
        let src = "EXPLAIN MATCH (u:User {id: $uid}) RETURN u" in
        let plan r =
          match r.Api.r_plan with Some p -> p | None -> Alcotest.fail "no plan"
        in
        let before = plan (run_ok s src) in
        check_contains "label scan before" "label index :User" before;
        Alcotest.(check bool) "no prop index yet" false
          (contains ~sub:"prop index" before);
        check_contains "cached" "plan cache: hit" (plan (run_ok s src));
        Session.register_prop_index s ~label:"User" ~key:"id";
        let after = plan (run_ok s src) in
        (* the invalidation forced a recompile (miss) AND the fresh plan
           uses the index — the cached pre-index plan is gone *)
        check_contains "recompiled" "plan cache: miss" after;
        check_contains "index plan" "prop index :User(id)" after;
        Alcotest.(check int) "invalidation counted" 1
          (Session.cache_stats s).Plan_cache.invalidations);
  ]

(* ------------------------------------------------------------------ *)
(* WAL round-trip and crash replay of parameterized statements        *)
(* ------------------------------------------------------------------ *)

let wal_record ?(params = Smap.empty) src =
  {
    Wal.src;
    stats = Cypher_core.Stats.empty;
    mode = Config.Atomic;
    order = Config.Forward;
    match_mode = Config.Isomorphic;
    params;
    kind = `Statement;
  }

let wal_tests =
  [
    case "journal frames carry parameter bindings byte-exactly" (fun () ->
        let params =
          params_of
            [
              ("s", vstr "a b\nc%d\r");
              ("n", vint (-3));
              ("f", Value.Float 2.5);
              ("b", vbool true);
              ("z", vnull);
              ("l", vlist [ vint 1; vstr "x" ]);
              ("m", Value.Map (params_of [ ("k", vint 9) ]));
            ]
        in
        let r = wal_record ~params "CREATE (:N {v: $n})" in
        let records, _, torn = Wal.scan_string (Wal.encode r) in
        Alcotest.(check bool) "clean" true (torn = None);
        match records with
        | [ r' ] ->
            Alcotest.(check string) "src" r.Wal.src r'.Wal.src;
            Alcotest.(check bool) "params survive" true
              (Smap.equal Value.equal_strict params r'.Wal.params)
        | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
    case "empty bindings keep the pre-parameter byte format" (fun () ->
        let framed = Wal.encode (wal_record "CREATE (:N)") in
        Alcotest.(check bool) "no p= field" false (contains ~sub:" p=" framed);
        let records, _, torn = Wal.scan_string framed in
        Alcotest.(check bool) "decodes" true
          (torn = None && List.length records = 1));
    case "crash replay re-executes with the recorded bindings" (fun () ->
        let buf = Buffer.create 256 in
        let s = Session.create ~config:(config_with [ ("v", vint 1) ]) Graph.empty in
        Session.set_journal s
          (Some
             (List.iter (fun e ->
                  Buffer.add_string buf (Wal.encode (Wal.record_of_entry e)))));
        ignore (run_ok s "CREATE (:N {v: $v})");
        Session.set_config s (config_with [ ("v", vint 2) ]);
        ignore (run_ok s "CREATE (:N {v: $v})");
        let live = Session.graph s in
        (* simulate a crash mid-append: a torn half-record at the tail *)
        let wal = Buffer.contents buf ^ "%37 deadbeef\nm=atomic o=f" in
        match Recovery.recover_strings ~wal () with
        | Error e -> Alcotest.failf "recovery failed: %s" e
        | Ok r ->
            Alcotest.(check bool) "tear detected" true (r.Recovery.torn <> None);
            Alcotest.(check int) "both statements replayed" 2 r.Recovery.replayed;
            Alcotest.check graph_iso_testable "recovered = live" live
              r.Recovery.graph;
            (* the replay really used the per-record bindings: both
               distinct values are present *)
            let t =
              run_table r.Recovery.graph "MATCH (n:N) RETURN n.v AS v ORDER BY v"
            in
            Alcotest.(check (list string))
              "param values" [ "1"; "2" ]
              (List.map Value.to_string (column t "v")));
  ]

let suite =
  binding_tests @ unbound_tests @ prepared_tests @ lru_tests @ cache_tests
  @ wal_tests
