(** The domain pool behind parallel read phases ([Cypher_util.Pool]):
    chunked fan-out with ordered, deterministic gather.

    The pool's entire contract is byte-identical agreement with the
    plain [List] functions — same elements, same order, same exception
    when one is raised — so every test here checks against the serial
    result, under adversarial chunk sizes that do not divide the input,
    degenerate one-element chunks, and chunks larger than the input. *)

module Pool = Cypher_util.Pool
open Test_util

let input = List.init 1000 (fun i -> i)

(* chunk_min × parallelism grid: odd sizes that leave ragged final
   chunks, chunk_min 1 (maximal fan-out), chunk_min 1000 (one chunk,
   serial fast path), and more domains than the machine has cores *)
let adversarial =
  List.concat_map
    (fun chunk_min -> List.map (fun p -> (chunk_min, p)) [ 2; 3; 4; 8 ])
    [ 1; 2; 3; 5; 16; 1000 ]

let suite =
  [
    case "map_chunks agrees with List.map under adversarial chunking"
      (fun () ->
        let expect = List.map (fun x -> x * x) input in
        List.iter
          (fun (chunk_min, parallelism) ->
            Alcotest.(check (list int))
              (Printf.sprintf "chunk_min=%d par=%d" chunk_min parallelism)
              expect
              (Pool.map_chunks ~chunk_min ~parallelism (fun x -> x * x) input))
          adversarial);
    case "concat_map_chunks preserves order and multiplicity" (fun () ->
        (* per-row fan-out of variable width, including empty expansions *)
        let f x = List.init (x mod 3) (fun j -> (x * 10) + j) in
        let expect = List.concat_map f input in
        List.iter
          (fun (chunk_min, parallelism) ->
            Alcotest.(check (list int))
              (Printf.sprintf "chunk_min=%d par=%d" chunk_min parallelism)
              expect
              (Pool.concat_map_chunks ~chunk_min ~parallelism f input))
          adversarial);
    case "filter_chunks agrees with List.filter" (fun () ->
        let p x = x mod 7 = 0 in
        let expect = List.filter p input in
        List.iter
          (fun (chunk_min, parallelism) ->
            Alcotest.(check (list int))
              (Printf.sprintf "chunk_min=%d par=%d" chunk_min parallelism)
              expect
              (Pool.filter_chunks ~chunk_min ~parallelism p input))
          adversarial);
    case "worker exception is re-raised on the caller domain" (fun () ->
        match
          Pool.map_chunks ~chunk_min:1 ~parallelism:4
            (fun x -> if x = 7 then failwith "boom" else x)
            input
        with
        | _ -> Alcotest.fail "expected Failure"
        | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
    case "earliest failing chunk wins, deterministically" (fun () ->
        (* rows 100 and 900 both fail, in different chunks; serial
           evaluation raises on row 100 first, so the parallel run must
           raise that same exception — every time, regardless of which
           worker finishes first *)
        for _ = 1 to 20 do
          match
            Pool.map_chunks ~chunk_min:1 ~parallelism:8
              (fun x ->
                if x = 100 || x = 900 then failwith (string_of_int x) else x)
              input
          with
          | _ -> Alcotest.fail "expected Failure"
          | exception Failure msg ->
              Alcotest.(check string) "first failure" "100" msg
        done);
    case "empty input" (fun () ->
        Alcotest.(check (list int)) "map" []
          (Pool.map_chunks ~chunk_min:1 ~parallelism:4 (fun x -> x) []);
        Alcotest.(check (list int)) "filter" []
          (Pool.filter_chunks ~chunk_min:1 ~parallelism:4 (fun _ -> true) []));
    case "single row" (fun () ->
        Alcotest.(check (list int)) "map" [ 42 ]
          (Pool.map_chunks ~chunk_min:1 ~parallelism:4 (fun x -> x * 2) [ 21 ]));
    case "fewer rows than domains" (fun () ->
        Alcotest.(check (list int)) "3 rows, 8 domains" [ 0; 1; 2 ]
          (Pool.map_chunks ~chunk_min:1 ~parallelism:8 (fun x -> x) [ 0; 1; 2 ]));
    case "parallelism 0 and 1 take the serial path" (fun () ->
        let expect = List.map succ input in
        Alcotest.(check (list int)) "par=0" expect
          (Pool.map_chunks ~chunk_min:1 ~parallelism:0 succ input);
        Alcotest.(check (list int)) "par=1" expect
          (Pool.map_chunks ~chunk_min:1 ~parallelism:1 succ input));
    case "with_chunk_min scopes the override and restores it" (fun () ->
        let before = !Pool.default_chunk_min in
        let inside = Pool.with_chunk_min 1 (fun () -> !Pool.default_chunk_min) in
        Alcotest.(check int) "inside" 1 inside;
        Alcotest.(check int) "restored" before !Pool.default_chunk_min;
        (* restored on exception too *)
        (try
           Pool.with_chunk_min 2 (fun () -> failwith "escape")
         with Failure _ -> ());
        Alcotest.(check int) "restored after raise" before
          !Pool.default_chunk_min);
  ]
