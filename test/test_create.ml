(** The CREATE clause: instantiation, variable reuse, per-record
    creation, saturation of anonymous elements. *)

open Cypher_graph
open Cypher_table
open Test_util
module Api = Cypher_core.Api
module Errors = Cypher_core.Errors

let suite =
  [
    case "creates labeled nodes with properties" (fun () ->
        let g = graph_of "CREATE (:A:B {x: 1, y: 'z'})" in
        Alcotest.(check int) "one node" 1 (Graph.node_count g);
        let n = List.hd (Graph.nodes g) in
        Alcotest.(check (list string)) "labels" [ "A"; "B" ]
          (Graph.labels_of g n.Graph.n_id);
        check_value "x" (vint 1) (Props.get n.Graph.n_props "x"));
    case "creates whole paths" (fun () ->
        let g = graph_of "CREATE (:A)-[:T {w: 1}]->(:B)<-[:U]-(:C)" in
        Alcotest.(check int) "nodes" 3 (Graph.node_count g);
        Alcotest.(check int) "rels" 2 (Graph.rel_count g);
        (* <-[:U]- points from C to B *)
        let u = List.find (fun (r : Graph.rel) -> r.Graph.r_type = "U") (Graph.rels g) in
        Alcotest.(check (list string)) "U source is C" [ "C" ]
          (Graph.labels_of g u.Graph.src));
    case "null-valued properties are not stored" (fun () ->
        let g = graph_of "CREATE (:A {x: null, y: 1})" in
        let n = List.hd (Graph.nodes g) in
        Alcotest.(check (list string)) "only y" [ "y" ] (Props.keys n.Graph.n_props));
    case "one instance per driving-table record" (fun () ->
        let g =
          run_graph Graph.empty "UNWIND [1, 2, 3] AS x CREATE (:N {v: x})"
        in
        Alcotest.(check int) "three nodes" 3 (Graph.node_count g));
    case "bound variables are reused, not recreated" (fun () ->
        let g =
          run_graph Graph.empty
            "CREATE (a:A) WITH a CREATE (a)-[:T]->(:B), (a)-[:U]->(:C)"
        in
        Alcotest.(check int) "nodes" 3 (Graph.node_count g);
        let a =
          List.find (fun (n : Graph.node) -> Graph.has_label g n.Graph.n_id "A")
            (Graph.nodes g)
        in
        Alcotest.(check int) "a has two outgoing" 2
          (List.length (Graph.out_rels g a.Graph.n_id)));
    case "bound variable with labels in CREATE is an error" (fun () ->
        match run_err Graph.empty "CREATE (a:A) WITH a CREATE (a:B)" with
        | Errors.Update_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "creating through a null binding is an error" (fun () ->
        match
          run_err Graph.empty "OPTIONAL MATCH (a:Missing) CREATE (a)-[:T]->(:B)"
        with
        | Errors.Update_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "relationship variables must be fresh" (fun () ->
        match
          run_err Graph.empty
            "CREATE (:A)-[r:T]->(:B) WITH r MATCH (c:B) CREATE (c)-[r:U]->(:D)"
        with
        | Errors.Update_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "created bindings flow into later clauses" (fun () ->
        let t =
          run_table Graph.empty "CREATE (a:A {x: 5})-[r:T {w: 2}]->(b:B) \
                                 RETURN a.x, r.w, labels(b)"
        in
        let row = List.hd (Table.rows t) in
        check_value "a.x" (vint 5) (Record.find row "a.x");
        check_value "r.w" (vint 2) (Record.find row "r.w");
        check_value "labels" (vlist [ vstr "B" ]) (Record.find row "labels(b)"));
    case "property expressions may use earlier pattern variables" (fun () ->
        let t =
          run_table Graph.empty
            "CREATE (a:A {x: 5})-[:T]->(b:B {y: a.x + 1}) RETURN b.y"
        in
        check_value "derived" (vint 6) (first_cell t));
    case "named path binding from CREATE" (fun () ->
        let t =
          run_table Graph.empty
            "CREATE p = (:A)-[:T]->(:B) RETURN length(p) AS l"
        in
        check_value "length" (vint 1) (first_cell t));
    case "multiple patterns in one CREATE share bindings" (fun () ->
        let g = graph_of "CREATE (a:A), (a)-[:T]->(b:B), (b)-[:U]->(a)" in
        Alcotest.(check int) "nodes" 2 (Graph.node_count g);
        Alcotest.(check int) "rels" 2 (Graph.rel_count g));
    case "CREATE on the unit table creates exactly once" (fun () ->
        let g = graph_of "CREATE (:Only)" in
        Alcotest.(check int) "one" 1 (Graph.node_count g));
    case "CREATE after filtering WHERE creates per surviving row" (fun () ->
        let g =
          run_graph Graph.empty
            "UNWIND [1, 2, 3, 4] AS x WITH x WHERE x % 2 = 0 CREATE (:Even {v: x})"
        in
        Alcotest.(check int) "two" 2 (Graph.node_count g));
  ]
