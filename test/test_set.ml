(** SET under both regimes: Example 1 (simultaneity), Example 2
    (conflicts), map replacement and merging, labels, null targets. *)

open Cypher_graph
open Test_util
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let prop g label key =
  let n =
    List.find (fun (n : Graph.node) -> Graph.has_label g n.Graph.n_id label)
      (Graph.nodes g)
  in
  Props.get n.Graph.n_props key

let two = graph_of "CREATE (:A {v: 1}), (:B {v: 2})"

let atomic_tests =
  [
    case "Example 1: atomic SET swaps simultaneously" (fun () ->
        let g =
          run_graph two "MATCH (a:A), (b:B) SET a.v = b.v, b.v = a.v"
        in
        check_value "a" (vint 2) (prop g "A" "v");
        check_value "b" (vint 1) (prop g "B" "v"));
    case "Example 2: conflicting assignments abort" (fun () ->
        let g = graph_of "CREATE (:T), (:S {v: 1}), (:S {v: 2})" in
        match run_err g "MATCH (t:T), (s:S) SET t.v = s.v" with
        | Errors.Set_conflict { key = "v"; _ } -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "agreeing assignments from several rows are fine" (fun () ->
        let g = graph_of "CREATE (:T), (:S {v: 7}), (:S {v: 7})" in
        let g = run_graph g "MATCH (t:T), (s:S) SET t.v = s.v" in
        check_value "set" (vint 7) (prop g "T" "v"));
    case "values are read from the input graph across clauses too" (fun () ->
        (* two separate SET clauses still see each other's output (it is
           the clause that is atomic, not the statement) *)
        let g = run_graph two "MATCH (a:A), (b:B) SET a.v = b.v SET b.v = a.v" in
        check_value "a" (vint 2) (prop g "A" "v");
        check_value "b" (vint 2) (prop g "B" "v"));
    case "SET on a null binding is a no-op" (fun () ->
        let g = run_graph two "OPTIONAL MATCH (x:Missing) SET x.v = 9" in
        Alcotest.(check int) "unchanged" 2 (Graph.node_count g));
    case "SET property to null removes it" (fun () ->
        let g = run_graph two "MATCH (a:A) SET a.v = null" in
        check_value "gone" vnull (prop g "A" "v"));
    case "SET += merges property maps" (fun () ->
        let g = run_graph two "MATCH (a:A) SET a += {w: 9, v: 5}" in
        check_value "overwritten" (vint 5) (prop g "A" "v");
        check_value "added" (vint 9) (prop g "A" "w"));
    case "SET = replaces the whole property map" (fun () ->
        let g = run_graph two "MATCH (a:A) SET a = {only: 1}" in
        check_value "old gone" vnull (prop g "A" "v");
        check_value "new there" (vint 1) (prop g "A" "only"));
    case "SET = from another entity copies its properties" (fun () ->
        let g = run_graph two "MATCH (a:A), (b:B) SET a = b" in
        check_value "copied" (vint 2) (prop g "A" "v"));
    case "conflicting whole-map replacements abort" (fun () ->
        let g = graph_of "CREATE (:T), (:S {v: 1}), (:S {v: 2})" in
        match run_err g "MATCH (t:T), (s:S) SET t = s" with
        | Errors.Set_conflict _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "replacement and agreeing point-set coexist" (fun () ->
        let g = run_graph two "MATCH (a:A) SET a = {v: 3}, a.v = 3" in
        check_value "agreed" (vint 3) (prop g "A" "v"));
    case "replacement and disagreeing point-set abort" (fun () ->
        match run_err two "MATCH (a:A) SET a = {v: 3}, a.v = 4" with
        | Errors.Set_conflict _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "SET adds labels" (fun () ->
        let g = run_graph two "MATCH (a:A) SET a:X:Y" in
        let n =
          List.find (fun (n : Graph.node) -> Graph.has_label g n.Graph.n_id "A")
            (Graph.nodes g)
        in
        Alcotest.(check (list string)) "labels" [ "A"; "X"; "Y" ]
          (Graph.labels_of g n.Graph.n_id));
    case "SET labels on a relationship is an error" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B)" in
        match run_err g "MATCH ()-[r]->() SET r:L" with
        | Errors.Update_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "SET on relationships works for properties" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B)" in
        let g = run_graph g "MATCH ()-[r]->() SET r.w = 3" in
        let r = List.hd (Graph.rels g) in
        check_value "w" (vint 3) (Props.get r.Graph.r_props "w"));
    case "order independence of atomic SET" (fun () ->
        let g = graph_of "CREATE (:N {v: 1}), (:N {v: 2}), (:N {v: 3})" in
        let run order =
          run_graph
            ~config:(Config.with_order order Config.revised)
            g "MATCH (n:N) SET n.v = n.v * 10"
        in
        Alcotest.check graph_iso_testable "forward = reverse"
          (run Config.Forward) (run Config.Reverse));
  ]

let legacy_tests =
  [
    case "Example 1 under legacy: last write is a no-op" (fun () ->
        let g =
          run_graph ~config:Config.cypher9 two
            "MATCH (a:A), (b:B) SET a.v = b.v, b.v = a.v"
        in
        check_value "a" (vint 2) (prop g "A" "v");
        check_value "b" (vint 2) (prop g "B" "v"));
    case "Example 2 under legacy: silent last-writer-wins" (fun () ->
        let g = graph_of "CREATE (:T), (:S {v: 1}), (:S {v: 2})" in
        let forward =
          run_graph ~config:Config.cypher9 g "MATCH (t:T), (s:S) SET t.v = s.v"
        in
        let reverse =
          run_graph
            ~config:(Config.with_order Config.Reverse Config.cypher9)
            g "MATCH (t:T), (s:S) SET t.v = s.v"
        in
        (* both go through, but with different results: nondeterminism *)
        Alcotest.(check bool) "order leaks" false
          (Value.equal_strict (prop forward "T" "v") (prop reverse "T" "v")));
    case "legacy and atomic agree on conflict-free workloads" (fun () ->
        let src = "MATCH (n) SET n.w = n.v * 2" in
        Alcotest.check graph_iso_testable "same"
          (run_graph ~config:Config.cypher9 two src)
          (run_graph ~config:Config.revised two src));
  ]

let suite = atomic_tests @ legacy_tests
