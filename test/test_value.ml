(** Values: ternary equality, total order, printing. *)

open Cypher_graph
open Test_util

let check_tri = Alcotest.check tri_testable

let equality_tests =
  [
    case "null = null is unknown" (fun () ->
        check_tri "null" Tri.Unknown (Value.equal_tri vnull vnull));
    case "null = 1 is unknown" (fun () ->
        check_tri "null" Tri.Unknown (Value.equal_tri vnull (vint 1)));
    case "int/float cross equality" (fun () ->
        check_tri "1 = 1.0" Tri.True (Value.equal_tri (vint 1) (Value.Float 1.0));
        check_tri "1 = 1.5" Tri.False (Value.equal_tri (vint 1) (Value.Float 1.5)));
    case "different families are not equal" (fun () ->
        check_tri "1 = 'a'" Tri.False (Value.equal_tri (vint 1) (vstr "a"));
        check_tri "true = 1" Tri.False (Value.equal_tri (vbool true) (vint 1)));
    case "list equality is pointwise" (fun () ->
        check_tri "[1,2] = [1,2]" Tri.True
          (Value.equal_tri (vlist [ vint 1; vint 2 ]) (vlist [ vint 1; vint 2 ]));
        check_tri "[1,2] = [1,3]" Tri.False
          (Value.equal_tri (vlist [ vint 1; vint 2 ]) (vlist [ vint 1; vint 3 ]));
        check_tri "length mismatch" Tri.False
          (Value.equal_tri (vlist [ vint 1 ]) (vlist [ vint 1; vint 2 ])))
    ;
    case "null inside lists makes equality unknown" (fun () ->
        check_tri "[1,null] = [1,null]" Tri.Unknown
          (Value.equal_tri (vlist [ vint 1; vnull ]) (vlist [ vint 1; vnull ]));
        check_tri "[1,null] = [2,null]" Tri.False
          (Value.equal_tri (vlist [ vint 1; vnull ]) (vlist [ vint 2; vnull ])));
    case "map equality" (fun () ->
        let m1 = Value.map_of_list [ ("a", vint 1); ("b", vint 2) ] in
        let m2 = Value.map_of_list [ ("b", vint 2); ("a", vint 1) ] in
        let m3 = Value.map_of_list [ ("a", vint 1) ] in
        check_tri "same bindings" Tri.True (Value.equal_tri m1 m2);
        check_tri "different keys" Tri.False (Value.equal_tri m1 m3));
    case "nodes compare by identity" (fun () ->
        check_tri "same id" Tri.True (Value.equal_tri (Value.Node 3) (Value.Node 3));
        check_tri "different id" Tri.False
          (Value.equal_tri (Value.Node 3) (Value.Node 4)));
    case "strict equality treats null = null" (fun () ->
        Alcotest.(check bool) "null" true (Value.equal_strict vnull vnull);
        Alcotest.(check bool) "1 vs 1.0" true
          (Value.equal_strict (vint 1) (Value.Float 1.0)))
    ;
  ]

(* 2^53 is the last float-exact integer: the boundary where the
   float_of_int embedding starts rounding *)
let two53 = 9007199254740992 (* 2^53 *)
let f_two53 = 9007199254740992.0

let exactness_tests =
  [
    case "ints beyond 2^53 do not equal nearby floats" (fun () ->
        check_tri "2^53 = 2^53.0" Tri.True
          (Value.equal_tri (vint two53) (Value.Float f_two53));
        (* 2^53 + 1 is not representable as a float; float_of_int would
           round it onto 2^53.0 and wrongly report equality *)
        check_tri "2^53+1 = 2^53.0" Tri.False
          (Value.equal_tri (vint (two53 + 1)) (Value.Float f_two53));
        Alcotest.(check bool) "2^53+1 > 2^53.0" true
          (Value.compare_total (vint (two53 + 1)) (Value.Float f_two53) > 0);
        Alcotest.(check bool) "2^53.0 < 2^53+1" true
          (Value.compare_total (Value.Float f_two53) (vint (two53 + 1)) < 0);
        Alcotest.(check bool) "strict agrees" false
          (Value.equal_strict (vint (two53 + 1)) (Value.Float f_two53)));
    case "ordering is correct around the 2^53 boundary" (fun () ->
        (* 2^53 + 2 IS representable; the three ints 2^53, 2^53+1,
           2^53+2 must interleave correctly with the two floats *)
        Alcotest.(check int) "2^53+2 = (2^53+2).0" 0
          (Value.compare_total (vint (two53 + 2))
             (Value.Float (f_two53 +. 2.)));
        Alcotest.(check bool) "2^53+1 < (2^53+2).0" true
          (Value.compare_total (vint (two53 + 1))
             (Value.Float (f_two53 +. 2.))
          < 0);
        Alcotest.(check bool) "fractional float between ints" true
          (Value.compare_tri (vint 2) (Value.Float 2.5) = Ok (-1)));
    case "max_int compares exactly against floats" (fun () ->
        (* float_of_int max_int rounds up to 2^62, which is strictly
           greater than max_int = 2^62 - 1 *)
        let f_max = float_of_int max_int in
        Alcotest.(check bool) "max_int < float_of_int max_int" true
          (Value.compare_total (vint max_int) (Value.Float f_max) < 0);
        Alcotest.(check bool) "min_int = float min_int" true
          (Value.compare_total (vint min_int) (Value.Float (float_of_int min_int))
          = 0);
        Alcotest.(check bool) "huge float > max_int" true
          (Value.compare_total (Value.Float 1e30) (vint max_int) > 0);
        Alcotest.(check bool) "-huge float < min_int" true
          (Value.compare_total (Value.Float (-1e30)) (vint min_int) < 0);
        Alcotest.(check bool) "infinity > max_int" true
          (Value.compare_total (Value.Float infinity) (vint max_int) > 0);
        Alcotest.(check bool) "-infinity < min_int" true
          (Value.compare_total (Value.Float neg_infinity) (vint min_int) < 0));
  ]

let nan_tests =
  let nan = Value.Float Float.nan in
  [
    case "NaN is unequal to everything under =" (fun () ->
        check_tri "nan = nan" Tri.False (Value.equal_tri nan nan);
        check_tri "nan = 1.0" Tri.False (Value.equal_tri nan (Value.Float 1.0));
        check_tri "nan = 1" Tri.False (Value.equal_tri nan (vint 1));
        check_tri "1 = nan" Tri.False (Value.equal_tri (vint 1) nan);
        check_tri "null = nan still unknown" Tri.Unknown
          (Value.equal_tri vnull nan));
    case "NaN is incomparable under the ordering operators" (fun () ->
        Alcotest.(check bool) "nan < 1 unknown" true
          (Value.compare_tri nan (Value.Float 1.0) = Error ());
        Alcotest.(check bool) "1 < nan unknown" true
          (Value.compare_tri (vint 1) nan = Error ());
        Alcotest.(check bool) "nan < nan unknown" true
          (Value.compare_tri nan nan = Error ()));
    case "NaN sorts deterministically in the global order" (fun () ->
        Alcotest.(check int) "nan = nan totally" 0
          (Value.compare_total nan nan);
        Alcotest.(check bool) "strict nan = nan" true
          (Value.equal_strict nan nan);
        Alcotest.(check bool) "nan below every float" true
          (Value.compare_total nan (Value.Float neg_infinity) < 0);
        Alcotest.(check bool) "nan below every int" true
          (Value.compare_total nan (vint min_int) < 0);
        (* still inside the number family: numbers sort before null *)
        Alcotest.(check bool) "nan before null" true
          (Value.compare_total nan vnull < 0);
        Alcotest.(check bool) "bool before nan" true
          (Value.compare_total (vbool true) nan < 0));
    case "NaN inside lists propagates inequality" (fun () ->
        check_tri "[nan] = [nan]" Tri.False
          (Value.equal_tri (vlist [ nan ]) (vlist [ nan ])));
  ]

let ordering_tests =
  [
    case "numbers order across int/float" (fun () ->
        Alcotest.(check bool) "1 < 1.5" true
          (Value.compare_total (vint 1) (Value.Float 1.5) < 0);
        Alcotest.(check bool) "2 > 1.5" true
          (Value.compare_total (vint 2) (Value.Float 1.5) > 0));
    case "null sorts last" (fun () ->
        Alcotest.(check bool) "int before null" true
          (Value.compare_total (vint 1) vnull < 0);
        Alcotest.(check bool) "string before null" true
          (Value.compare_total (vstr "z") vnull < 0));
    case "string before bool before number (global order)" (fun () ->
        Alcotest.(check bool) "string < bool" true
          (Value.compare_total (vstr "a") (vbool true) < 0);
        Alcotest.(check bool) "bool < number" true
          (Value.compare_total (vbool true) (vint 0) < 0));
    case "comparison operator is unknown across families" (fun () ->
        Alcotest.(check bool) "1 < 'a' undecidable" true
          (Value.compare_tri (vint 1) (vstr "a") = Error ());
        Alcotest.(check bool) "null < 1 undecidable" true
          (Value.compare_tri vnull (vint 1) = Error ()));
    case "comparison operator on same family" (fun () ->
        Alcotest.(check bool) "1 < 2" true (Value.compare_tri (vint 1) (vint 2) = Ok (-1));
        Alcotest.(check bool) "'a' < 'b'" true
          (match Value.compare_tri (vstr "a") (vstr "b") with
          | Ok c -> c < 0
          | Error () -> false));
  ]

let printing_tests =
  [
    case "literals print in Cypher syntax" (fun () ->
        Alcotest.(check string) "int" "42" (Value.to_string (vint 42));
        Alcotest.(check string) "string" "'hi'" (Value.to_string (vstr "hi"));
        Alcotest.(check string) "null" "null" (Value.to_string vnull);
        Alcotest.(check string) "bool" "true" (Value.to_string (vbool true));
        Alcotest.(check string) "float" "1.5" (Value.to_string (Value.Float 1.5));
        Alcotest.(check string) "whole float" "2.0" (Value.to_string (Value.Float 2.0)));
    case "strings escape quotes" (fun () ->
        Alcotest.(check string) "escape" "'it\\'s'" (Value.to_string (vstr "it's")));
    case "lists and maps" (fun () ->
        Alcotest.(check string) "list" "[1, 2]"
          (Value.to_string (vlist [ vint 1; vint 2 ]));
        Alcotest.(check string) "map" "{a: 1}"
          (Value.to_string (Value.map_of_list [ ("a", vint 1) ])));
  ]

(* qcheck: compare_total is a total order consistent with equal_strict *)
let value_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Value.Null;
                map (fun b -> Value.Bool b) bool;
                map (fun i -> Value.Int i) small_signed_int;
                map (fun f -> Value.Float f) (float_bound_inclusive 100.);
                map (fun s -> Value.String s) (string_size (int_bound 6));
              ]
          else
            frequency
              [
                (3, self 0);
                (1, map (fun l -> Value.List l) (list_size (int_bound 4) (self (n / 2))));
              ])
        (min n 4))

let value_arb = QCheck.make ~print:Value.to_string value_gen

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"compare_total reflexive" ~count:300 value_arb
        (fun v -> Value.compare_total v v = 0);
      QCheck.Test.make ~name:"compare_total antisymmetric" ~count:300
        (QCheck.pair value_arb value_arb) (fun (a, b) ->
          let c1 = Value.compare_total a b and c2 = Value.compare_total b a in
          (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0));
      QCheck.Test.make ~name:"compare_total transitive" ~count:300
        (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
          let ( <= ) x y = Value.compare_total x y <= 0 in
          if a <= b && b <= c then a <= c else true);
      QCheck.Test.make ~name:"equal_strict iff compare_total = 0" ~count:300
        (QCheck.pair value_arb value_arb) (fun (a, b) ->
          Value.equal_strict a b = (Value.compare_total a b = 0));
      QCheck.Test.make ~name:"equal_tri True implies equal_strict" ~count:300
        (QCheck.pair value_arb value_arb) (fun (a, b) ->
          if Value.equal_tri a b = Tri.True then Value.equal_strict a b
          else true);
    ]

let suite =
  equality_tests @ exactness_tests @ nan_tests @ ordering_tests
  @ printing_tests @ qcheck_tests
