(** Reading pipeline: RETURN/WITH projection, aggregation with implicit
    grouping, DISTINCT, ORDER BY, SKIP/LIMIT, UNWIND, UNION. *)

open Cypher_graph
open Cypher_table
open Test_util
module Api = Cypher_core.Api

let people =
  graph_of
    "CREATE (:P {name: 'a', dept: 'x', salary: 10}),\n\
    \       (:P {name: 'b', dept: 'x', salary: 20}),\n\
    \       (:P {name: 'c', dept: 'y', salary: 30})"

let ints t name = column t name

let projection_tests =
  [
    case "aliases name output columns" (fun () ->
        let t = run_table people "MATCH (p:P) RETURN p.name AS who LIMIT 1" in
        Alcotest.(check (list string)) "columns" [ "who" ] (Table.columns t));
    case "default column names come from the expression" (fun () ->
        let t = run_table people "MATCH (p:P) RETURN p.name LIMIT 1" in
        Alcotest.(check (list string)) "columns" [ "p.name" ] (Table.columns t));
    case "duplicate output columns are rejected" (fun () ->
        match run_err people "MATCH (p:P) RETURN p.name AS x, p.dept AS x" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
    case "WITH renames and narrows scope" (fun () ->
        let t = run_table people "MATCH (p:P) WITH p.name AS n RETURN n ORDER BY n" in
        Alcotest.(check (list value_testable)) "names"
          [ vstr "a"; vstr "b"; vstr "c" ] (ints t "n");
        (* p is out of scope after WITH *)
        match run_err people "MATCH (p:P) WITH p.name AS n RETURN p" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
    case "RETURN star keeps all columns" (fun () ->
        let t = run_table people "MATCH (p:P) WITH p.name AS n, p.dept AS d RETURN *" in
        Alcotest.(check (list string)) "columns" [ "n"; "d" ] (Table.columns t));
    case "WITH star plus extras" (fun () ->
        let t =
          run_table people
            "MATCH (p:P) WITH p.name AS n WITH *, size(n) AS len RETURN n, len LIMIT 1"
        in
        Alcotest.(check (list string)) "columns" [ "n"; "len" ] (Table.columns t));
    case "DISTINCT eliminates duplicate records" (fun () ->
        let t = run_table people "MATCH (p:P) RETURN DISTINCT p.dept AS d" in
        check_rows "two depts" 2 t);
    case "ORDER BY ascending and descending" (fun () ->
        let t = run_table people "MATCH (p:P) RETURN p.salary AS s ORDER BY s DESC" in
        Alcotest.(check (list value_testable)) "desc"
          [ vint 30; vint 20; vint 10 ] (ints t "s"));
    case "ORDER BY may reference non-projected variables" (fun () ->
        let t =
          run_table people "MATCH (p:P) RETURN p.name AS n ORDER BY p.salary DESC"
        in
        Alcotest.(check (list value_testable)) "by salary"
          [ vstr "c"; vstr "b"; vstr "a" ] (ints t "n"));
    case "nulls sort last" (fun () ->
        let g = graph_of "CREATE (:P {x: 2}), (:P), (:P {x: 1})" in
        let t = run_table g "MATCH (p:P) RETURN p.x AS x ORDER BY x" in
        Alcotest.(check (list value_testable)) "null last"
          [ vint 1; vint 2; vnull ] (ints t "x"));
    case "SKIP and LIMIT with expressions" (fun () ->
        let t =
          run_table people "MATCH (p:P) RETURN p.salary AS s ORDER BY s SKIP 1 LIMIT 1"
        in
        Alcotest.(check (list value_testable)) "middle" [ vint 20 ] (ints t "s"));
    case "WITH ... WHERE filters projected rows" (fun () ->
        let t =
          run_table people
            "MATCH (p:P) WITH p.salary AS s WHERE s > 15 RETURN s ORDER BY s"
        in
        Alcotest.(check (list value_testable)) "filtered" [ vint 20; vint 30 ]
          (ints t "s"));
  ]

let aggregation_tests =
  [
    case "count star over everything" (fun () ->
        check_value "count" (vint 3)
          (first_cell (run_table people "MATCH (p:P) RETURN count(*) AS n")));
    case "count on empty table returns one row with 0" (fun () ->
        let t = run_table Graph.empty "MATCH (n) RETURN count(*) AS n" in
        check_rows "one row" 1 t;
        check_value "zero" (vint 0) (first_cell t));
    case "implicit grouping by non-aggregate items" (fun () ->
        let t =
          run_table people
            "MATCH (p:P) RETURN p.dept AS d, count(*) AS n, sum(p.salary) AS s \
             ORDER BY d"
        in
        check_rows "two groups" 2 t;
        Alcotest.(check (list value_testable)) "counts" [ vint 2; vint 1 ] (ints t "n");
        Alcotest.(check (list value_testable)) "sums" [ vint 30; vint 30 ] (ints t "s"));
    case "count(expr) skips nulls, count(*) does not" (fun () ->
        let g = graph_of "CREATE (:P {x: 1}), (:P)" in
        let t = run_table g "MATCH (p:P) RETURN count(p.x) AS cx, count(*) AS call" in
        let row = List.hd (Table.rows t) in
        check_value "count x" (vint 1) (Record.find row "cx");
        check_value "count star" (vint 2) (Record.find row "call"));
    case "min max avg collect" (fun () ->
        let t =
          run_table people
            "MATCH (p:P) RETURN min(p.salary) AS mn, max(p.salary) AS mx, \
             avg(p.salary) AS av, collect(p.name) AS names"
        in
        let row = List.hd (Table.rows t) in
        check_value "min" (vint 10) (Record.find row "mn");
        check_value "max" (vint 30) (Record.find row "mx");
        check_value "avg" (Value.Float 20.0) (Record.find row "av");
        check_value "collect" (vlist [ vstr "a"; vstr "b"; vstr "c" ])
          (Record.find row "names"));
    case "aggregates of an empty group" (fun () ->
        let t =
          run_table Graph.empty
            "MATCH (n) RETURN sum(n.x) AS s, min(n.x) AS mn, collect(n) AS c"
        in
        let row = List.hd (Table.rows t) in
        check_value "sum" (vint 0) (Record.find row "s");
        check_value "min" vnull (Record.find row "mn");
        check_value "collect" (vlist []) (Record.find row "c"));
    case "DISTINCT inside aggregates" (fun () ->
        let t = run_table people "MATCH (p:P) RETURN count(DISTINCT p.dept) AS n" in
        check_value "two depts" (vint 2) (first_cell t));
    case "aggregate combined with arithmetic" (fun () ->
        let t = run_table people "MATCH (p:P) RETURN count(*) * 10 AS n" in
        check_value "scaled" (vint 30) (first_cell t));
    case "ORDER BY an aggregate" (fun () ->
        let t =
          run_table people
            "MATCH (p:P) RETURN p.dept AS d, count(*) AS n ORDER BY count(*) DESC"
        in
        Alcotest.(check (list value_testable)) "depts" [ vstr "x"; vstr "y" ]
          (ints t "d"));
    case "aggregate outside RETURN/WITH is an error" (fun () ->
        match run_err people "MATCH (p:P) WHERE count(*) > 1 RETURN p" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
  ]

let unwind_union_tests =
  [
    case "UNWIND expands lists into rows" (fun () ->
        let t = run_table Graph.empty "UNWIND [1, 2, 3] AS x RETURN x" in
        Alcotest.(check (list value_testable)) "rows" [ vint 1; vint 2; vint 3 ]
          (ints t "x"));
    case "UNWIND null produces no rows" (fun () ->
        check_rows "none" 0 (run_table Graph.empty "UNWIND null AS x RETURN x"));
    case "UNWIND keeps outer bindings" (fun () ->
        let t =
          run_table Graph.empty
            "UNWIND [1, 2] AS x UNWIND ['a', 'b'] AS y RETURN x, y"
        in
        check_rows "cartesian" 4 t);
    case "UNION deduplicates" (fun () ->
        let t =
          run_table Graph.empty "RETURN 1 AS x UNION RETURN 1 AS x UNION RETURN 2 AS x"
        in
        check_rows "two" 2 t);
    case "UNION ALL keeps duplicates" (fun () ->
        let t = run_table Graph.empty "RETURN 1 AS x UNION ALL RETURN 1 AS x" in
        check_rows "two" 2 t);
    case "UNION requires equal columns" (fun () ->
        match run_err Graph.empty "RETURN 1 AS x UNION RETURN 2 AS y" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
    case "UNION of updating queries applies both sides" (fun () ->
        (* updates are side-effects threaded left to right (Section 8.2) *)
        let o =
          run Graph.empty
            "CREATE (n:A) RETURN 1 AS x UNION CREATE (m:B) RETURN 2 AS x"
        in
        Alcotest.(check int) "both created" 2 (Graph.node_count o.Api.graph);
        check_rows "rows unioned" 2 o.Api.table);
  ]

let suite = projection_tests @ aggregation_tests @ unwind_union_tests

let extra_tests =
  [
    case "ORDER BY multiple keys with stable ties" (fun () ->
        let g =
          graph_of
            "CREATE (:R {a: 1, b: 2}), (:R {a: 1, b: 1}), (:R {a: 0, b: 9})"
        in
        let t =
          run_table g "MATCH (r:R) RETURN r.a AS a, r.b AS b ORDER BY a, b DESC"
        in
        Alcotest.(check (list value_testable)) "a then b desc"
          [ vint 9; vint 2; vint 1 ] (ints t "b"));
    case "collect then UNWIND restores the bag" (fun () ->
        let t =
          run_table Graph.empty
            "UNWIND [3, 1, 2, 1] AS x WITH collect(x) AS xs UNWIND xs AS y \
             RETURN y"
        in
        Alcotest.(check (list value_testable)) "bag kept"
          [ vint 3; vint 1; vint 2; vint 1 ] (ints t "y"));
    case "grouping key may be a computed expression" (fun () ->
        let t =
          run_table Graph.empty
            "UNWIND [1, 2, 3, 4, 5] AS x RETURN x % 2 AS parity, count(*) AS n \
             ORDER BY parity"
        in
        Alcotest.(check (list value_testable)) "counts" [ vint 2; vint 3 ]
          (ints t "n"));
    case "SKIP/LIMIT accept parameters" (fun () ->
        let config = Cypher_core.Config.(with_param "k" (vint 1) revised) in
        let t =
          run_table ~config Graph.empty
            "UNWIND [10, 20, 30] AS x RETURN x ORDER BY x SKIP $k LIMIT $k"
        in
        Alcotest.(check (list value_testable)) "window" [ vint 20 ] (ints t "x"));
    case "DISTINCT then aggregation downstream" (fun () ->
        let t =
          run_table Graph.empty
            "UNWIND [1, 1, 2, 2, 3] AS x WITH DISTINCT x RETURN count(*) AS n"
        in
        check_value "three" (vint 3) (first_cell t));
  ]

let suite = suite @ extra_tests
