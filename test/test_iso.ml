(** The graph-isomorphism checker used to validate reproduced figures. *)

open Cypher_graph
open Cypher_paper
open Test_util

let iso = Iso.isomorphic

let build = Fixtures.build

let suite =
  [
    case "empty graphs are isomorphic" (fun () ->
        Alcotest.(check bool) "iso" true (iso Graph.empty Graph.empty));
    case "same shape different ids" (fun () ->
        let g1 = build [ ([ "A" ], []); ([ "B" ], []) ] [ (0, "T", 1) ] in
        (* create in the other order: ids differ, shape does not *)
        let g2 = build [ ([ "B" ], []); ([ "A" ], []) ] [ (1, "T", 0) ] in
        Alcotest.(check bool) "iso" true (iso g1 g2));
    case "label mismatch breaks isomorphism" (fun () ->
        let g1 = build [ ([ "A" ], []) ] [] in
        let g2 = build [ ([ "B" ], []) ] [] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "property mismatch breaks isomorphism" (fun () ->
        let g1 = build [ ([], [ ("x", vint 1) ]) ] [] in
        let g2 = build [ ([], [ ("x", vint 2) ]) ] [] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "relationship direction matters" (fun () ->
        let g1 = build [ ([ "A" ], []); ([ "B" ], []) ] [ (0, "T", 1) ] in
        let g2 = build [ ([ "A" ], []); ([ "B" ], []) ] [ (1, "T", 0) ] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "relationship multiplicity matters" (fun () ->
        let g1 = build [ ([], []); ([], []) ] [ (0, "T", 1) ] in
        let g2 = build [ ([], []); ([], []) ] [ (0, "T", 1); (0, "T", 1) ] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "parallel edges of different types" (fun () ->
        let g1 = build [ ([], []); ([], []) ] [ (0, "T", 1); (0, "U", 1) ] in
        let g2 = build [ ([], []); ([], []) ] [ (0, "U", 1); (0, "T", 1) ] in
        Alcotest.(check bool) "iso" true (iso g1 g2));
    case "indistinguishable nodes require backtracking" (fun () ->
        (* two anonymous nodes where only the edge decides the mapping *)
        let g1 = build [ ([], []); ([], []); ([ "X" ], []) ] [ (0, "T", 2) ] in
        let g2 = build [ ([], []); ([], []); ([ "X" ], []) ] [ (1, "T", 2) ] in
        Alcotest.(check bool) "iso" true (iso g1 g2));
    case "triangle vs path" (fun () ->
        let g1 =
          build [ ([], []); ([], []); ([], []) ]
            [ (0, "T", 1); (1, "T", 2); (2, "T", 0) ]
        in
        let g2 =
          build [ ([], []); ([], []); ([], []) ]
            [ (0, "T", 1); (1, "T", 2); (0, "T", 2) ]
        in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "large symmetric graphs terminate" (fun () ->
        (* A cycle of 40 indistinguishable nodes against an id-shifted
           copy.  The pre-refinement checker enumerated node bijections
           before looking at a single relationship, which is factorial
           here; colour refinement plus incremental edge checking must
           decide this instantly.  Also the near-miss: one reversed
           relationship makes the cycles non-isomorphic only once edges
           are compared. *)
        let n = 40 in
        let nodes = List.init n (fun _ -> ([], [])) in
        let cycle shift =
          List.init n (fun i -> ((i + shift) mod n, "T", (i + shift + 1) mod n))
        in
        let g1 = build nodes (cycle 0) in
        let g2 = build nodes (cycle 7) in
        Alcotest.(check bool) "shifted cycle iso" true (iso g1 g2);
        let broken =
          (1, "T", 0) :: List.tl (cycle 0)
          (* reverse one edge: in-/out-degrees no longer all 1/1 *)
        in
        let g3 = build nodes broken in
        Alcotest.(check bool) "reversed edge not iso" false (iso g1 g3));
    case "search catches what refinement cannot" (fun () ->
        (* The classic WL-indistinguishable pair: two 3-cycles vs one
           6-cycle.  Both are 1-in/1-out regular, so colour refinement
           leaves a single class; only the backtracking edge checks can
           tell them apart. *)
        let nodes = List.init 6 (fun _ -> ([], [])) in
        let g1 =
          build nodes
            [ (0, "T", 1); (1, "T", 2); (2, "T", 0);
              (3, "T", 4); (4, "T", 5); (5, "T", 3) ]
        in
        let g2 =
          build nodes
            [ (0, "T", 1); (1, "T", 2); (2, "T", 3);
              (3, "T", 4); (4, "T", 5); (5, "T", 0) ]
        in
        Alcotest.(check bool) "3+3 vs 6 cycle" false (iso g1 g2));
    case "figure fixtures distinguish correctly" (fun () ->
        Alcotest.(check bool) "7a vs 7b" false (iso Fixtures.figure7a Fixtures.figure7b);
        Alcotest.(check bool) "7b vs 7c" false (iso Fixtures.figure7b Fixtures.figure7c);
        Alcotest.(check bool) "8a vs 8b" false (iso Fixtures.figure8a Fixtures.figure8b);
        Alcotest.(check bool) "9a vs 9b" false (iso Fixtures.figure9a Fixtures.figure9b));
  ]
