(** The graph-isomorphism checker used to validate reproduced figures. *)

open Cypher_graph
open Cypher_paper
open Test_util

let iso = Iso.isomorphic

let build = Fixtures.build

let suite =
  [
    case "empty graphs are isomorphic" (fun () ->
        Alcotest.(check bool) "iso" true (iso Graph.empty Graph.empty));
    case "same shape different ids" (fun () ->
        let g1 = build [ ([ "A" ], []); ([ "B" ], []) ] [ (0, "T", 1) ] in
        (* create in the other order: ids differ, shape does not *)
        let g2 = build [ ([ "B" ], []); ([ "A" ], []) ] [ (1, "T", 0) ] in
        Alcotest.(check bool) "iso" true (iso g1 g2));
    case "label mismatch breaks isomorphism" (fun () ->
        let g1 = build [ ([ "A" ], []) ] [] in
        let g2 = build [ ([ "B" ], []) ] [] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "property mismatch breaks isomorphism" (fun () ->
        let g1 = build [ ([], [ ("x", vint 1) ]) ] [] in
        let g2 = build [ ([], [ ("x", vint 2) ]) ] [] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "relationship direction matters" (fun () ->
        let g1 = build [ ([ "A" ], []); ([ "B" ], []) ] [ (0, "T", 1) ] in
        let g2 = build [ ([ "A" ], []); ([ "B" ], []) ] [ (1, "T", 0) ] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "relationship multiplicity matters" (fun () ->
        let g1 = build [ ([], []); ([], []) ] [ (0, "T", 1) ] in
        let g2 = build [ ([], []); ([], []) ] [ (0, "T", 1); (0, "T", 1) ] in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "parallel edges of different types" (fun () ->
        let g1 = build [ ([], []); ([], []) ] [ (0, "T", 1); (0, "U", 1) ] in
        let g2 = build [ ([], []); ([], []) ] [ (0, "U", 1); (0, "T", 1) ] in
        Alcotest.(check bool) "iso" true (iso g1 g2));
    case "indistinguishable nodes require backtracking" (fun () ->
        (* two anonymous nodes where only the edge decides the mapping *)
        let g1 = build [ ([], []); ([], []); ([ "X" ], []) ] [ (0, "T", 2) ] in
        let g2 = build [ ([], []); ([], []); ([ "X" ], []) ] [ (1, "T", 2) ] in
        Alcotest.(check bool) "iso" true (iso g1 g2));
    case "triangle vs path" (fun () ->
        let g1 =
          build [ ([], []); ([], []); ([], []) ]
            [ (0, "T", 1); (1, "T", 2); (2, "T", 0) ]
        in
        let g2 =
          build [ ([], []); ([], []); ([], []) ]
            [ (0, "T", 1); (1, "T", 2); (0, "T", 2) ]
        in
        Alcotest.(check bool) "not iso" false (iso g1 g2));
    case "figure fixtures distinguish correctly" (fun () ->
        Alcotest.(check bool) "7a vs 7b" false (iso Fixtures.figure7a Fixtures.figure7b);
        Alcotest.(check bool) "7b vs 7c" false (iso Fixtures.figure7b Fixtures.figure7c);
        Alcotest.(check bool) "8a vs 8b" false (iso Fixtures.figure8a Fixtures.figure8b);
        Alcotest.(check bool) "9a vs 9b" false (iso Fixtures.figure9a Fixtures.figure9b));
  ]
