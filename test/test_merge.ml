(** MERGE: legacy match-or-create, the five proposed semantics, ON
    CREATE / ON MATCH, bound variables, null handling. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
open Cypher_paper
open Test_util
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let legacy_tests =
  [
    case "match-or-create: creates when absent" (fun () ->
        let g = run_graph ~config:Config.cypher9 Graph.empty "MERGE (:X {v: 1})" in
        Alcotest.(check int) "created" 1 (Graph.node_count g));
    case "match-or-create: matches when present" (fun () ->
        let g = graph_of "CREATE (:X {v: 1})" in
        let g = run_graph ~config:Config.cypher9 g "MERGE (:X {v: 1})" in
        Alcotest.(check int) "no duplicate" 1 (Graph.node_count g));
    case "legacy MERGE reads its own writes across records" (fun () ->
        let g =
          run_graph ~config:Config.cypher9 Graph.empty
            "UNWIND [1, 1, 1] AS x MERGE (:X {v: x})"
        in
        Alcotest.(check int) "one node for three equal rows" 1 (Graph.node_count g));
    case "returns every match, not just one" (fun () ->
        let g = graph_of "CREATE (:X {v: 1}), (:X {v: 1})" in
        let t = run_table ~config:Config.cypher9 g "MERGE (n:X {v: 1}) RETURN n" in
        check_rows "both matches" 2 t);
    case "undirected legacy MERGE matches either direction" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B)" in
        let g2 =
          run_graph ~config:Config.cypher9 g "MATCH (a:A), (b:B) MERGE (b)-[:T]-(a)"
        in
        Alcotest.(check int) "matched, no new rel" 1 (Graph.rel_count g2));
    case "undirected legacy MERGE creates left-to-right" (fun () ->
        let g = graph_of "CREATE (:A), (:B)" in
        let g2 =
          run_graph ~config:Config.cypher9 g "MATCH (a:A), (b:B) MERGE (a)-[:T]-(b)"
        in
        let r = List.hd (Graph.rels g2) in
        Alcotest.(check (list string)) "src is A" [ "A" ] (Graph.labels_of g2 r.Graph.src));
    case "ON CREATE SET fires only on creation" (fun () ->
        let g =
          run_graph ~config:Config.cypher9 Graph.empty
            "MERGE (n:X {v: 1}) ON CREATE SET n.created = true ON MATCH SET n.matched = true"
        in
        let n = List.hd (Graph.nodes g) in
        check_value "created" (vbool true) (Props.get n.Graph.n_props "created");
        check_value "not matched" vnull (Props.get n.Graph.n_props "matched"));
    case "ON MATCH SET fires only on match" (fun () ->
        let g = graph_of "CREATE (:X {v: 1})" in
        let g =
          run_graph ~config:Config.cypher9 g
            "MERGE (n:X {v: 1}) ON CREATE SET n.created = true ON MATCH SET n.matched = true"
        in
        let n = List.hd (Graph.nodes g) in
        check_value "matched" (vbool true) (Props.get n.Graph.n_props "matched");
        check_value "not created" vnull (Props.get n.Graph.n_props "created"));
  ]

(* helpers over explicit driving tables *)
let run_mode ?(config = Config.permissive) mode src (g, t) =
  Runner.run_merge_mode config ~mode src (g, t)

let revised_tests =
  [
    case "MERGE ALL matches against the input graph only" (fun () ->
        (* all three identical rows fail in the input graph: three copies *)
        let g =
          run_graph Graph.empty "UNWIND [1, 1, 1] AS x MERGE ALL (:X {v: x})"
        in
        Alcotest.(check int) "three copies" 3 (Graph.node_count g));
    case "MERGE SAME collapses identical creations" (fun () ->
        let g =
          run_graph Graph.empty "UNWIND [1, 1, 1] AS x MERGE SAME (:X {v: x})"
        in
        Alcotest.(check int) "one node" 1 (Graph.node_count g));
    case "existing nodes only collapse with themselves" (fun () ->
        (* two pre-existing equal nodes stay distinct; merged row matches
           both, creating nothing *)
        let g = graph_of "CREATE (:X {v: 1}), (:X {v: 1})" in
        let g2 = run_graph g "MERGE SAME (:X {v: 1})" in
        Alcotest.(check int) "still two" 2 (Graph.node_count g2));
    case "matched rows extend with every embedding" (fun () ->
        let g = graph_of "CREATE (:X {v: 1}), (:X {v: 1})" in
        let _, t =
          run_mode Merge_all "MERGE (n:X {v: 1})" (g, Table.unit)
        in
        check_rows "both embeddings" 2 t);
    case "result table is Tmatch plus Tcreate" (fun () ->
        let g = graph_of "CREATE (:X {v: 1})" in
        let _, t =
          Runner.run_clause Config.revised
            "MERGE ALL (n:X {v: x})"
            (g, Table.make [ "x" ]
                  [ Record.of_list [ ("x", vint 1) ];
                    Record.of_list [ ("x", vint 2) ] ])
        in
        check_rows "one match + one creation" 2 t);
    case "bound variables anchor creation" (fun () ->
        let g =
          run_graph Graph.empty
            "CREATE (p:Product) MERGE ALL (p)<-[:OFFERS]-(v:Vendor)"
        in
        Alcotest.(check int) "nodes" 2 (Graph.node_count g);
        Alcotest.(check int) "rels" 1 (Graph.rel_count g));
    case "merging on a null binding is an error" (fun () ->
        match
          run_err Graph.empty "OPTIONAL MATCH (a:Missing) MERGE ALL (a)-[:T]->(:B)"
        with
        | Errors.Update_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "null pattern properties never match but create propertyless" (fun () ->
        let g = graph_of "CREATE (:X)" in
        (* {v: null} does not match the existing propertyless node *)
        let g2 = run_graph g "MERGE SAME (:X {v: null})" in
        Alcotest.(check int) "created a second node" 2 (Graph.node_count g2);
        (* but the created node carries no v property, so a re-run
           still cannot match it: null matching is never satisfiable *)
        let g3 = run_graph g2 "MERGE SAME (:X {v: null})" in
        Alcotest.(check int) "created again" 3 (Graph.node_count g3));
    case "repeated variable inside the pattern instantiates once" (fun () ->
        let g =
          run_graph Graph.empty "MERGE ALL (a:X)-[:T]->(:Y)<-[:U]-(a)"
        in
        Alcotest.(check int) "two nodes" 2 (Graph.node_count g);
        Alcotest.(check int) "two rels" 2 (Graph.rel_count g));
    case "tuples of patterns merge together" (fun () ->
        let g = run_graph Graph.empty "MERGE ALL (a:X), (a)-[:T]->(:Y)" in
        Alcotest.(check int) "nodes" 2 (Graph.node_count g);
        Alcotest.(check int) "rels" 1 (Graph.rel_count g));
    case "ON CREATE SET under MERGE ALL is atomic over created rows" (fun () ->
        let g =
          run_graph Graph.empty
            "UNWIND [1, 2] AS x MERGE ALL (n:X {v: x}) ON CREATE SET n.flag = true"
        in
        Alcotest.(check int) "two nodes" 2 (Graph.node_count g);
        List.iter
          (fun (n : Graph.node) ->
            check_value "flagged" (vbool true) (Props.get n.Graph.n_props "flag"))
          (Graph.nodes g));
    case "ON CREATE SET conflicts after SAME-collapse are detected" (fun () ->
        (* both rows collapse to one node, then try to set different stamps *)
        match
          run_err Graph.empty
            "UNWIND [1, 2] AS x MERGE SAME (n:X) ON CREATE SET n.stamp = x"
        with
        | Errors.Set_conflict _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "ON MATCH SET under revised semantics" (fun () ->
        let g = graph_of "CREATE (:X {v: 1})" in
        let g =
          run_graph g "MERGE ALL (n:X {v: 1}) ON MATCH SET n.seen = true"
        in
        let n = List.hd (Graph.nodes g) in
        check_value "seen" (vbool true) (Props.get n.Graph.n_props "seen"));
    case "plain MERGE is rejected by the revised dialect" (fun () ->
        match run_err Graph.empty "MERGE (:X)" with
        | Errors.Validation_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "quotient rewrites table references" (fun () ->
        let _, t =
          Runner.run_clause Config.revised "MERGE SAME (n:X {v: v})"
            (Graph.empty,
             Table.make [ "v" ]
               [ Record.of_list [ ("v", vint 1) ];
                 Record.of_list [ ("v", vint 1) ] ])
        in
        match column t "n" with
        | [ Value.Node a; Value.Node b ] ->
            Alcotest.(check int) "same representative" a b
        | _ -> Alcotest.fail "expected two node bindings");
    case "GROUPING ignores irrelevant columns" (fun () ->
        (* same cid/pid but different date: one instance (Example 5) *)
        let table =
          Table.make [ "cid"; "date" ]
            [
              Record.of_list [ ("cid", vint 1); ("date", vstr "a") ];
              Record.of_list [ ("cid", vint 1); ("date", vstr "b") ];
            ]
        in
        let g, _ =
          run_mode Merge_grouping "MERGE (:U {id: cid})" (Graph.empty, table)
        in
        Alcotest.(check int) "one node" 1 (Graph.node_count g));
    case "GROUPING distinguishes bound-variable anchors" (fun () ->
        let base = graph_of "CREATE (:P {k: 1}), (:P {k: 2})" in
        let nodes = Graph.node_ids base in
        let table =
          Table.make [ "p" ]
            (List.map (fun id -> Record.of_list [ ("p", Value.Node id) ]) nodes)
        in
        let g, _ =
          run_mode Merge_grouping "MERGE (p)-[:T]->(:X)" (base, table)
        in
        (* two groups: one :X per anchored p *)
        Alcotest.(check int) "two created" 4 (Graph.node_count g);
        Alcotest.(check int) "two rels" 2 (Graph.rel_count g));
  ]

let figure_tests =
  [
    case "Figure 6: legacy order dependence" (fun () ->
        let run order =
          fst
            (Runner.run_merge_mode (Config.with_order order Config.cypher9)
               ~mode:Merge_legacy Fixtures.example3_merge
               (Fixtures.example3_graph, Fixtures.example3_table))
        in
        Alcotest.check graph_iso_testable "forward is 6b" Fixtures.figure6b
          (run Config.Forward);
        Alcotest.check graph_iso_testable "reverse is 6a" Fixtures.figure6a
          (run Config.Reverse));
    case "Figure 7: Example 5 under all five semantics" (fun () ->
        let run mode =
          fst
            (run_mode mode Fixtures.example5_merge (Graph.empty, Fixtures.example5_table))
        in
        Alcotest.check graph_iso_testable "ALL = 7a" Fixtures.figure7a (run Merge_all);
        Alcotest.check graph_iso_testable "GROUPING = 7b" Fixtures.figure7b
          (run Merge_grouping);
        Alcotest.check graph_iso_testable "WEAK = 7c" Fixtures.figure7c
          (run Merge_weak_collapse);
        Alcotest.check graph_iso_testable "COLLAPSE = 7c" Fixtures.figure7c
          (run Merge_collapse);
        Alcotest.check graph_iso_testable "SAME = 7c" Fixtures.figure7c
          (run Merge_same));
    case "Figure 8: Example 6 position sensitivity" (fun () ->
        let run mode =
          fst
            (run_mode mode Fixtures.example6_merge (Graph.empty, Fixtures.example6_table))
        in
        Alcotest.check graph_iso_testable "WEAK = 8a" Fixtures.figure8a
          (run Merge_weak_collapse);
        Alcotest.check graph_iso_testable "COLLAPSE = 8b" Fixtures.figure8b
          (run Merge_collapse);
        Alcotest.check graph_iso_testable "SAME = 8b" Fixtures.figure8b
          (run Merge_same));
    case "Figure 9: Example 7 relationship collapse" (fun () ->
        let run mode =
          fst
            (run_mode mode Fixtures.example7_merge
               (Fixtures.example7_graph, Fixtures.example7_table))
        in
        Alcotest.check graph_iso_testable "COLLAPSE = 9a" Fixtures.figure9a
          (run Merge_collapse);
        Alcotest.check graph_iso_testable "SAME = 9b" Fixtures.figure9b
          (run Merge_same));
  ]

let suite = legacy_tests @ revised_tests @ figure_tests
