(** Driving tables: bags of consistent records. *)

open Cypher_table
open Test_util

let r l = Record.of_list l

let suite =
  [
    case "unit table has one empty record" (fun () ->
        Alcotest.(check int) "rows" 1 (Table.row_count Table.unit);
        Alcotest.(check (list string)) "columns" [] (Table.columns Table.unit));
    case "make pads missing bindings with null" (fun () ->
        let t = Table.make [ "a"; "b" ] [ r [ ("a", vint 1) ] ] in
        check_value "b is null" vnull (Record.find (List.hd (Table.rows t)) "b"));
    case "make drops extra bindings" (fun () ->
        let t = Table.make [ "a" ] [ r [ ("a", vint 1); ("z", vint 9) ] ] in
        Alcotest.(check bool) "z gone" false
          (Record.mem (List.hd (Table.rows t)) "z"));
    case "column order is preserved" (fun () ->
        let t = Table.make [ "z"; "a" ] [] in
        Alcotest.(check (list string)) "order" [ "z"; "a" ] (Table.columns t));
    case "bag union adds up duplicates" (fun () ->
        let t1 = Table.make [ "a" ] [ r [ ("a", vint 1) ] ] in
        let t2 = Table.make [ "a" ] [ r [ ("a", vint 1) ] ] in
        Alcotest.(check int) "two rows" 2 (Table.row_count (Table.bag_union t1 t2)));
    case "union deduplicates" (fun () ->
        let t1 = Table.make [ "a" ] [ r [ ("a", vint 1) ]; r [ ("a", vint 2) ] ] in
        let t2 = Table.make [ "a" ] [ r [ ("a", vint 1) ] ] in
        Alcotest.(check int) "three distinct... no, two" 2
          (Table.row_count (Table.union t1 t2)));
    case "distinct preserves first-occurrence order" (fun () ->
        let t =
          Table.make [ "a" ]
            [ r [ ("a", vint 2) ]; r [ ("a", vint 1) ]; r [ ("a", vint 2) ] ]
        in
        Alcotest.(check (list value_testable))
          "order" [ vint 2; vint 1 ]
          (column (Table.distinct t) "a"));
    case "distinct on 10k rows is fast and order-preserving" (fun () ->
        (* 10_000 rows over 100 distinct values: the old pairwise
           O(n^2) dedup took seconds here; the keyed one is instant.
           First occurrence of value v is at row v, so the output must
           be 0..99 in order. *)
        let t =
          Table.make [ "a" ]
            (List.init 10_000 (fun i -> r [ ("a", vint (i mod 100)) ]))
        in
        let d = Table.distinct t in
        Alcotest.(check int) "100 distinct rows" 100 (Table.row_count d);
        Alcotest.(check (list value_testable))
          "first-occurrence order"
          (List.init 100 (fun i -> vint i))
          (column d "a"));
    case "projection keeps row count (bag semantics)" (fun () ->
        let t =
          Table.make [ "a"; "b" ]
            [ r [ ("a", vint 1); ("b", vint 1) ]; r [ ("a", vint 1); ("b", vint 2) ] ]
        in
        Alcotest.(check int) "rows" 2 (Table.row_count (Table.project [ "a" ] t)));
    case "skip and limit" (fun () ->
        let t = Table.make [ "a" ] (List.init 5 (fun i -> r [ ("a", vint i) ])) in
        Alcotest.(check int) "skip 2" 3 (Table.row_count (Table.skip 2 t));
        Alcotest.(check int) "limit 2" 2 (Table.row_count (Table.limit 2 t));
        Alcotest.(check int) "skip beyond" 0 (Table.row_count (Table.skip 10 t)));
    case "reverse and permute keep the bag" (fun () ->
        let t = Table.make [ "a" ] (List.init 6 (fun i -> r [ ("a", vint i) ])) in
        Alcotest.(check bool) "reverse" true
          (Table.equal_as_bags t (Table.reverse t));
        Alcotest.(check bool) "permute" true
          (Table.equal_as_bags t (Table.permute_seed 7 t)));
    case "equal_as_bags ignores order but not multiplicity" (fun () ->
        let t1 = Table.make [ "a" ] [ r [ ("a", vint 1) ]; r [ ("a", vint 2) ] ] in
        let t2 = Table.make [ "a" ] [ r [ ("a", vint 2) ]; r [ ("a", vint 1) ] ] in
        let t3 = Table.make [ "a" ] [ r [ ("a", vint 1) ]; r [ ("a", vint 1) ] ] in
        Alcotest.(check bool) "same bag" true (Table.equal_as_bags t1 t2);
        Alcotest.(check bool) "different bag" false (Table.equal_as_bags t1 t3));
    case "record project pads with null" (fun () ->
        let rec_ = Record.project (r [ ("a", vint 1) ]) [ "a"; "b" ] in
        check_value "a" (vint 1) (Record.find rec_ "a");
        check_value "b" vnull (Record.find rec_ "b"));
  ]
