(** Dump round-trip exactness: dump → parse → execute → isomorphic.

    The snapshot subsystem stands on [Dump.to_cypher], so the dump must
    be round-trip exact for {e every} storable graph — including the
    adversarial corners pretty-printing never meets: reparse-exact
    floats, nan/infinity, [min_int], identifiers needing backtick
    quoting (with embedded backticks), keyword-shaped labels, control
    characters in strings, self-loops and parallel edges. *)

open Cypher_graph
open Test_util
module Api = Cypher_core.Api
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let find_sub haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = if i + nl > hl then -1 else if String.sub haystack i nl = needle then i else go (i + 1) in
  go 0

let reload g =
  let script = Dump.to_cypher g in
  if script = "" then Graph.empty
  else
    match Api.run_program ~config:Config.permissive Graph.empty script with
    | Ok (g', _) -> g'
    | Error e ->
        Alcotest.failf "dump did not reload: %s\n%s" (Errors.to_string e) script

let check_roundtrip ?(msg = "isomorphic") g =
  Alcotest.check graph_iso_testable msg g (reload g)

let node_with props =
  let _, g = Graph.create_node ~labels:[ "N" ] ~props:(Props.of_list props) Graph.empty in
  g

let vfloat f = Value.Float f

let literal_tests =
  [
    case "value_literal renders min_int to an expression that reparses" (fun () ->
        Alcotest.(check string) "min_int"
          (Printf.sprintf "(-%d - 1)" max_int)
          (Dump.value_literal (Value.Int min_int)));
    case "extreme and awkward numbers round-trip" (fun () ->
        check_roundtrip
          (node_with
             [
               ("min", Value.Int min_int);
               ("max", Value.Int max_int);
               ("tenth", vfloat 0.1);
               ("tiny", vfloat 5e-324);
               ("huge", vfloat 1.7976931348623157e308);
               ("third", vfloat (1.0 /. 3.0));
               ("negzero", vfloat (-0.0));
               ("intish", vfloat 3.0);
               ("big_intish", vfloat 1e20);
             ]));
    case "non-finite floats round-trip as constant expressions" (fun () ->
        check_roundtrip
          (node_with
             [
               ("nan", vfloat Float.nan);
               ("inf", vfloat Float.infinity);
               ("ninf", vfloat Float.neg_infinity);
             ]));
    case "string escapes round-trip" (fun () ->
        check_roundtrip
          (node_with
             [
               ("quote", vstr "it's");
               ("backslash", vstr "a\\b");
               ("newline", vstr "line1\nline2");
               ("tab", vstr "a\tb");
               ("controls", vstr "\x00\x01\x1f");
               ("unicodeish", vstr "caf\xc3\xa9");
             ]));
    case "nested lists and maps round-trip with quoted keys" (fun () ->
        check_roundtrip
          (node_with
             [
               ( "l",
                 vlist
                   [
                     vint 1;
                     vstr "it's";
                     vlist [ vbool true; vfloat 2.5 ];
                     Value.Map
                       (Cypher_util.Maps.Smap.of_seq
                          (List.to_seq
                             [ ("plain", vint 1); ("weird key", vstr "v") ]));
                   ] );
             ]));
    case "entity-valued properties are refused" (fun () ->
        match Dump.value_literal (Value.Node 3) with
        | exception Invalid_argument _ -> ()
        | s -> Alcotest.failf "expected Invalid_argument, got %s" s);
  ]

let ident_tests =
  [
    case "quote_ident doubles embedded backticks" (fun () ->
        Alcotest.(check string) "doubled" "`a``b`" (Dump.quote_ident "a`b");
        Alcotest.(check string) "plain untouched" "plain" (Dump.quote_ident "plain"));
    case "labels, keys and types needing quoting round-trip" (fun () ->
        let _, g =
          Graph.create_node
            ~labels:[ "Oddly Labeled"; "with`tick"; "123start" ]
            ~props:(Props.of_list [ ("strange key", vint 1); ("a`b", vint 2) ])
            Graph.empty
        in
        let id2, g = Graph.create_node g in
        let _, g =
          Graph.create_rel ~src:id2 ~tgt:id2 ~r_type:"odd type"
            ~props:(Props.of_list [ ("k v", vint 3) ])
            g
        in
        check_roundtrip g);
    case "keyword-shaped identifiers round-trip" (fun () ->
        (* the lexer has no reserved words — MATCH/CREATE/DELETE are
           contextual — so these must survive without quoting *)
        let _, g =
          Graph.create_node ~labels:[ "MATCH"; "DELETE" ]
            ~props:(Props.of_list [ ("create", vint 1); ("return", vint 2) ])
            Graph.empty
        in
        check_roundtrip g);
  ]

let shape_tests =
  [
    case "self-loops and parallel edges round-trip" (fun () ->
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let b, g = Graph.create_node ~labels:[ "B" ] g in
        let _, g = Graph.create_rel ~src:a ~tgt:a ~r_type:"LOOP" g in
        let _, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let _, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let _, g = Graph.create_rel ~src:b ~tgt:a ~r_type:"T" g in
        check_roundtrip g);
    case "dumps preserve id order so replay ids are a monotone remap" (fun () ->
        (* delete a middle node: ids 0,2 survive; the dump must list n0
           before n2 so the reloaded graph numbers them 0,1 in order *)
        let g = graph_of "CREATE (:A {k: 0}), (:B {k: 1}), (:C {k: 2})" in
        let g = run_graph ~config:Config.revised g "MATCH (b:B) DELETE b" in
        let script = Dump.to_cypher g in
        let a_pos = find_sub script ":A" and c_pos = find_sub script ":C" in
        Alcotest.(check bool) "both present" true (a_pos >= 0 && c_pos >= 0);
        Alcotest.(check bool) "A before C" true (a_pos < c_pos);
        check_roundtrip g);
    case "dangling graphs are refused with the offending ids" (fun () ->
        (* even legacy semantics reject a statement ending dangling, so
           force the state at the graph layer directly *)
        let a, g = Graph.create_node ~labels:[ "A" ] Graph.empty in
        let b, g = Graph.create_node ~labels:[ "B" ] g in
        let _, g = Graph.create_rel ~src:a ~tgt:b ~r_type:"T" g in
        let g = Graph.remove_node_force g a in
        Alcotest.(check bool) "dangling" false (Graph.is_wellformed g);
        match Dump.to_cypher g with
        | exception Invalid_argument m ->
            Alcotest.(check bool) "message names the damage" true
              (contains m "dangling")
        | _ -> Alcotest.fail "expected Invalid_argument");
    case "empty graph dumps to the empty script" (fun () ->
        Alcotest.(check string) "empty" "" (Dump.to_cypher Graph.empty));
  ]

(* the fuzz generator's graphs, across many seeds: the same population
   oracle 7 snapshots, checked here directly against the dump contract *)
let fuzz_population_tests =
  [
    case "fuzz-generated graphs round-trip (300 seeds)" (fun () ->
        for seed = 0 to 299 do
          let rng = Cypher_fuzz.Rng.make seed in
          let g = Cypher_fuzz.Gen.graph rng in
          Alcotest.check graph_iso_testable
            (Printf.sprintf "seed %d" seed)
            g (reload g)
        done);
  ]

let suite = literal_tests @ ident_tests @ shape_tests @ fuzz_population_tests
