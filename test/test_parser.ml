(** The parser and the dialect validators (experiments G1 and G2). *)

open Cypher_ast.Ast
module Validate = Cypher_ast.Validate
module Parser = Cypher_parser.Parser
open Test_util

let parse src =
  match Parser.parse_string src with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)

let parse_expr src =
  match Parser.parse_expr_string src with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e)

let parse_fails src =
  match Parser.parse_string src with Ok _ -> false | Error _ -> true

let valid dialect src =
  match Validate.validate dialect (parse src) with Ok _ -> true | Error _ -> false

let shape name ok = if not ok then Alcotest.failf "unexpected AST shape: %s" name

let expr_tests =
  [
    case "precedence: arithmetic under comparison under boolean" (fun () ->
        shape "1 + 2 * 3 = 7 AND true"
          (match parse_expr "1 + 2 * 3 = 7 AND true" with
          | And (Cmp (Eq, Bin (Add, _, Bin (Mul, _, _)), _), Lit (L_bool true)) ->
              true
          | _ -> false));
    case "power is right-associative" (fun () ->
        shape "2 ^ 3 ^ 4"
          (match parse_expr "2 ^ 3 ^ 4" with
          | Bin (Pow, _, Bin (Pow, _, _)) -> true
          | _ -> false));
    case "unary minus binds tighter than subtraction" (fun () ->
        shape "-a - b"
          (match parse_expr "-a - b" with
          | Bin (Sub, Neg (Var "a"), Var "b") -> true
          | _ -> false));
    case "postfix chains: property, index, labels" (fun () ->
        shape "n.a.b"
          (match parse_expr "n.a.b" with
          | Prop (Prop (Var "n", "a"), "b") -> true
          | _ -> false);
        shape "xs[0]"
          (match parse_expr "xs[0]" with
          | Index (Var "xs", Lit (L_int 0)) -> true
          | _ -> false);
        shape "n:Person:Admin"
          (match parse_expr "n:Person:Admin" with
          | Has_labels (Var "n", [ "Person"; "Admin" ]) -> true
          | _ -> false));
    case "slices" (fun () ->
        shape "xs[1..3]"
          (match parse_expr "xs[1..3]" with
          | Slice (Var "xs", Some _, Some _) -> true
          | _ -> false);
        shape "xs[..3]"
          (match parse_expr "xs[..3]" with
          | Slice (Var "xs", None, Some _) -> true
          | _ -> false);
        shape "xs[1..]"
          (match parse_expr "xs[1..]" with
          | Slice (Var "xs", Some _, None) -> true
          | _ -> false));
    case "IS NULL / IS NOT NULL" (fun () ->
        shape "IS NULL"
          (match parse_expr "n.x IS NULL" with Is_null (Prop _) -> true | _ -> false);
        shape "IS NOT NULL"
          (match parse_expr "n.x IS NOT NULL" with
          | Is_not_null (Prop _) -> true
          | _ -> false));
    case "string operators" (fun () ->
        shape "string ops"
          (match
             parse_expr "a STARTS WITH 'x' AND a ENDS WITH 'y' AND a CONTAINS 'z'"
           with
          | And
              ( Str_op (Starts_with, _, _),
                And (Str_op (Ends_with, _, _), Str_op (Contains, _, _)) ) ->
              true
          | _ -> false));
    case "IN list" (fun () ->
        shape "x IN [1,2]"
          (match parse_expr "x IN [1, 2]" with
          | In_list (Var "x", List_lit [ _; _ ]) -> true
          | _ -> false));
    case "aggregates and count-star" (fun () ->
        shape "count(*)"
          (match parse_expr "count(*)" with
          | Agg (Count, false, None) -> true
          | _ -> false);
        shape "count distinct"
          (match parse_expr "count(DISTINCT n.x)" with
          | Agg (Count, true, Some _) -> true
          | _ -> false);
        shape "collect"
          (match parse_expr "collect(n)" with
          | Agg (Collect, false, Some (Var "n")) -> true
          | _ -> false));
    case "function calls are lowercased" (fun () ->
        shape "toUpper"
          (match parse_expr "toUpper(s)" with
          | Fn ("toupper", [ Var "s" ]) -> true
          | _ -> false));
    case "case expressions" (fun () ->
        shape "simple case"
          (match parse_expr "CASE n.x WHEN 1 THEN 'a' ELSE 'b' END" with
          | Case { case_operand = Some _; case_whens = [ _ ]; case_default = Some _ }
            ->
              true
          | _ -> false);
        shape "searched case"
          (match parse_expr "CASE WHEN a > 1 THEN 'a' END" with
          | Case { case_operand = None; case_whens = [ _ ]; case_default = None } ->
              true
          | _ -> false));
    case "list comprehension" (fun () ->
        shape "comprehension"
          (match parse_expr "[x IN xs WHERE x > 0 | x * 2]" with
          | List_comp { comp_var = "x"; comp_where = Some _; comp_body = Some _; _ }
            ->
              true
          | _ -> false));
    case "map and list literals" (fun () ->
        shape "map"
          (match parse_expr "{a: 1, b: 'x'}" with
          | Map_lit [ ("a", _); ("b", _) ] -> true
          | _ -> false);
        shape "list"
          (match parse_expr "[1, 2, 3]" with
          | List_lit [ _; _; _ ] -> true
          | _ -> false));
    case "parameters" (fun () ->
        shape "$limit + 1"
          (match parse_expr "$limit + 1" with
          | Bin (Add, Param "limit", _) -> true
          | _ -> false));
    case "contextual keywords are valid variable names" (fun () ->
        (* the paper's own Section 4.2 query binds a relationship
           variable named `order` *)
        shape "order as var"
          (match parse_expr "order.x" with
          | Prop (Var "order", "x") -> true
          | _ -> false);
        shape "limit as var"
          (match parse_expr "limit + 1" with
          | Bin (Add, Var "limit", _) -> true
          | _ -> false));
  ]

let pattern_tests =
  [
    case "full relationship pattern" (fun () ->
        match parse "MATCH (a:A {x: 1})-[r:T {y: 2}]->(b) RETURN a" with
        | { clauses = [ Match { patterns = [ p ]; _ }; _ ]; _ } -> (
            Alcotest.(check (option string)) "start var" (Some "a") p.pat_start.np_var;
            Alcotest.(check (list string)) "labels" [ "A" ] p.pat_start.np_labels;
            match p.pat_steps with
            | [ (rp, np) ] ->
                Alcotest.(check (option string)) "rel var" (Some "r") rp.rp_var;
                Alcotest.(check (list string)) "types" [ "T" ] rp.rp_types;
                Alcotest.(check bool) "dir out" true (rp.rp_dir = Out);
                Alcotest.(check (option string)) "end var" (Some "b") np.np_var
            | _ -> Alcotest.fail "steps")
        | _ -> Alcotest.fail "clause shape");
    case "left and undirected arrows" (fun () ->
        match parse "MATCH (a)<-[:T]-(b), (c)-[:U]-(d) RETURN a" with
        | { clauses = [ Match { patterns = [ p1; p2 ]; _ }; _ ]; _ } ->
            Alcotest.(check bool) "in" true ((fst (List.hd p1.pat_steps)).rp_dir = In);
            Alcotest.(check bool) "undirected" true
              ((fst (List.hd p2.pat_steps)).rp_dir = Undirected)
        | _ -> Alcotest.fail "clause shape");
    case "arrow shorthand without brackets" (fun () ->
        match parse "MATCH (a)-->(b), (c)<--(d), (e)--(f) RETURN a" with
        | { clauses = [ Match { patterns = [ p1; p2; p3 ]; _ }; _ ]; _ } ->
            Alcotest.(check bool) "out" true ((fst (List.hd p1.pat_steps)).rp_dir = Out);
            Alcotest.(check bool) "in" true ((fst (List.hd p2.pat_steps)).rp_dir = In);
            Alcotest.(check bool) "undirected" true
              ((fst (List.hd p3.pat_steps)).rp_dir = Undirected)
        | _ -> Alcotest.fail "clause shape");
    case "variable-length ranges" (fun () ->
        let range src =
          match parse src with
          | { clauses = [ Match { patterns = [ p ]; _ }; _ ]; _ } ->
              (fst (List.hd p.pat_steps)).rp_range
          | _ -> Alcotest.fail "clause shape"
        in
        Alcotest.(check bool) "*" true (range "MATCH (a)-[*]->(b) RETURN a" = Some (None, None));
        Alcotest.(check bool) "*2" true
          (range "MATCH (a)-[*2]->(b) RETURN a" = Some (Some 2, Some 2));
        Alcotest.(check bool) "*1..3" true
          (range "MATCH (a)-[*1..3]->(b) RETURN a" = Some (Some 1, Some 3));
        Alcotest.(check bool) "*..3" true
          (range "MATCH (a)-[*..3]->(b) RETURN a" = Some (None, Some 3)));
    case "type alternatives" (fun () ->
        match parse "MATCH (a)-[:T|U]->(b) RETURN a" with
        | { clauses = [ Match { patterns = [ p ]; _ }; _ ]; _ } ->
            Alcotest.(check (list string)) "types" [ "T"; "U" ]
              (fst (List.hd p.pat_steps)).rp_types
        | _ -> Alcotest.fail "clause shape");
    case "named paths" (fun () ->
        match parse "MATCH p = (a)-[:T]->(b) RETURN p" with
        | { clauses = [ Match { patterns = [ p ]; _ }; _ ]; _ } ->
            Alcotest.(check (option string)) "path var" (Some "p") p.pat_var
        | _ -> Alcotest.fail "clause shape");
  ]

let clause_tests =
  [
    case "clause sequences" (fun () ->
        let q =
          parse
            "MATCH (u:User) WHERE u.id = 89 CREATE (u)-[:ORDERED]->(p:P) \
             SET p.x = 1 REMOVE p:P DETACH DELETE p"
        in
        Alcotest.(check int) "five clauses" 5 (List.length q.clauses));
    case "optional match" (fun () ->
        match parse "OPTIONAL MATCH (a) RETURN a" with
        | { clauses = [ Match { optional = true; _ }; _ ]; _ } -> ()
        | _ -> Alcotest.fail "optional");
    case "unwind" (fun () ->
        match parse "UNWIND [1,2] AS x RETURN x" with
        | { clauses = [ Unwind { alias = "x"; _ }; _ ]; _ } -> ()
        | _ -> Alcotest.fail "unwind");
    case "projection trimmings" (fun () ->
        match parse "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC SKIP 1 LIMIT 2" with
        | { clauses = [ _; Return p ]; _ } ->
            Alcotest.(check bool) "distinct" true p.proj_distinct;
            Alcotest.(check int) "order" 1 (List.length p.proj_order);
            Alcotest.(check bool) "desc" false
              (List.hd p.proj_order).sort_ascending;
            Alcotest.(check bool) "skip" true (p.proj_skip <> None);
            Alcotest.(check bool) "limit" true (p.proj_limit <> None)
        | _ -> Alcotest.fail "return");
    case "with star and where" (fun () ->
        match parse "MATCH (n) WITH * WHERE n.x > 1 RETURN n" with
        | { clauses = [ _; With p; _ ]; _ } ->
            Alcotest.(check bool) "star" true p.proj_star;
            Alcotest.(check bool) "where" true (p.proj_where <> None)
        | _ -> Alcotest.fail "with");
    case "set item forms" (fun () ->
        match parse "MATCH (n) SET n.x = 1, n += {y: 2}, n = {z: 3}, n:L1:L2" with
        | { clauses = [ _; Set [ Set_prop _; Set_merge_props _; Set_all_props _; Set_labels (_, [ "L1"; "L2" ]) ] ]; _ } ->
            ()
        | _ -> Alcotest.fail "set items");
    case "remove item forms" (fun () ->
        match parse "MATCH (n) REMOVE n.x, n:L" with
        | { clauses = [ _; Remove [ Rem_prop _; Rem_labels _ ] ]; _ } -> ()
        | _ -> Alcotest.fail "remove items");
    case "delete and detach delete" (fun () ->
        (match parse "MATCH (n) DELETE n" with
        | { clauses = [ _; Delete { detach = false; _ } ]; _ } -> ()
        | _ -> Alcotest.fail "delete");
        match parse "MATCH (n) DETACH DELETE n" with
        | { clauses = [ _; Delete { detach = true; _ } ]; _ } -> ()
        | _ -> Alcotest.fail "detach delete");
    case "merge modes" (fun () ->
        let mode src =
          match parse src with
          | { clauses = [ Merge { mode; _ } ]; _ } -> mode
          | _ -> Alcotest.fail "merge"
        in
        Alcotest.(check bool) "legacy" true (mode "MERGE (n:X)" = Merge_legacy);
        Alcotest.(check bool) "all" true (mode "MERGE ALL (n:X)" = Merge_all);
        Alcotest.(check bool) "same" true (mode "MERGE SAME (n:X)" = Merge_same);
        Alcotest.(check bool) "grouping" true
          (mode "MERGE GROUPING (n:X)" = Merge_grouping);
        Alcotest.(check bool) "weak" true
          (mode "MERGE WEAK (n:X)" = Merge_weak_collapse);
        Alcotest.(check bool) "collapse" true
          (mode "MERGE COLLAPSE (n:X)" = Merge_collapse));
    case "merge with a variable called all" (fun () ->
        (* MERGE all = (...) must read `all` as a path variable *)
        match parse "MERGE all = (n:X)" with
        | { clauses = [ Merge { mode = Merge_legacy; patterns = [ p ]; _ } ]; _ } ->
            Alcotest.(check (option string)) "path var" (Some "all") p.pat_var
        | _ -> Alcotest.fail "merge path var");
    case "merge subclauses" (fun () ->
        match parse "MERGE (n:X) ON CREATE SET n.c = 1 ON MATCH SET n.m = 2" with
        | { clauses = [ Merge { on_create = [ _ ]; on_match = [ _ ]; _ } ]; _ } -> ()
        | _ -> Alcotest.fail "on create/match");
    case "foreach" (fun () ->
        match parse "MATCH (n) FOREACH (x IN [1,2] | SET n.a = x SET n.b = x)" with
        | { clauses = [ _; Foreach { fe_var = "x"; fe_body = [ Set _; Set _ ]; _ } ]; _ }
          ->
            ()
        | _ -> Alcotest.fail "foreach");
    case "union and union all" (fun () ->
        (match parse "RETURN 1 AS x UNION RETURN 2 AS x" with
        | { union = Some (false, _); _ } -> ()
        | _ -> Alcotest.fail "union");
        match parse "RETURN 1 AS x UNION ALL RETURN 2 AS x" with
        | { union = Some (true, _); _ } -> ()
        | _ -> Alcotest.fail "union all");
    case "programs split on semicolons" (fun () ->
        match Parser.parse_program "RETURN 1; RETURN 2;" with
        | Ok [ _; _ ] -> ()
        | Ok qs -> Alcotest.failf "expected 2 queries, got %d" (List.length qs)
        | Error e -> Alcotest.failf "parse failed: %s" (Parser.error_to_string e));
    case "parse errors carry positions" (fun () ->
        match Parser.parse_string "MATCH (n) RETURN" with
        | Error e -> Alcotest.(check bool) "line 1" true (e.Parser.line = 1)
        | Ok _ -> Alcotest.fail "should not parse");
    case "garbage after query is rejected" (fun () ->
        Alcotest.(check bool) "fails" true (parse_fails "RETURN 1 garbage ,"));
  ]

let validation_tests =
  [
    case "G1: Cypher 9 requires WITH between update and reading clauses" (fun () ->
        let src = "CREATE (n:X) MATCH (m) RETURN m" in
        Alcotest.(check bool) "cypher9 rejects" false (valid Validate.Cypher9 src);
        Alcotest.(check bool) "revised accepts" true (valid Validate.Revised src);
        let with_src = "CREATE (n:X) WITH n MATCH (m) RETURN m" in
        Alcotest.(check bool) "cypher9 accepts with WITH" true
          (valid Validate.Cypher9 with_src));
    case "G1: Cypher 9 MERGE takes a single, possibly undirected pattern" (fun () ->
        Alcotest.(check bool) "undirected ok" true
          (valid Validate.Cypher9 "MERGE (a)-[:T]-(b)");
        Alcotest.(check bool) "tuple rejected" false
          (valid Validate.Cypher9 "MERGE (a:X), (b:Y)"));
    case "G1: CREATE relationships must be directed and typed" (fun () ->
        Alcotest.(check bool) "undirected rejected" false
          (valid Validate.Cypher9 "CREATE (a)-[:T]-(b)");
        Alcotest.(check bool) "untyped rejected" false
          (valid Validate.Cypher9 "CREATE (a)-[]->(b)");
        Alcotest.(check bool) "var-length rejected" false
          (valid Validate.Cypher9 "CREATE (a)-[:T*2]->(b)"));
    case "G1: MERGE ALL does not exist in Cypher 9" (fun () ->
        Alcotest.(check bool) "rejected" false
          (valid Validate.Cypher9 "MERGE ALL (a:X)"));
    case "G2: revised grammar forbids plain MERGE" (fun () ->
        Alcotest.(check bool) "plain rejected" false
          (valid Validate.Revised "MERGE (a:X)");
        Alcotest.(check bool) "ALL accepted" true
          (valid Validate.Revised "MERGE ALL (a:X)");
        Alcotest.(check bool) "SAME accepted" true
          (valid Validate.Revised "MERGE SAME (a:X)"));
    case "G2: revised MERGE takes tuples of directed patterns" (fun () ->
        Alcotest.(check bool) "tuple accepted" true
          (valid Validate.Revised "MERGE ALL (a:X), (b:Y)");
        Alcotest.(check bool) "undirected rejected" false
          (valid Validate.Revised "MERGE ALL (a)-[:T]-(b)"));
    case "G2: update clauses may follow reading clauses freely" (fun () ->
        Alcotest.(check bool) "free composition" true
          (valid Validate.Revised
             "CREATE (n:X) MATCH (m:X) SET m.y = 1 MATCH (k) RETURN k"));
    case "proposal modes require the permissive dialect" (fun () ->
        Alcotest.(check bool) "revised rejects GROUPING" false
          (valid Validate.Revised "MERGE GROUPING (a:X)");
        Alcotest.(check bool) "permissive accepts GROUPING" true
          (valid Validate.Permissive "MERGE GROUPING (a:X)"));
    case "RETURN must be last" (fun () ->
        Alcotest.(check bool) "rejected" false
          (valid Validate.Revised "RETURN 1 MATCH (n)"));
    case "FOREACH body must contain only update clauses" (fun () ->
        Alcotest.(check bool) "reading clause rejected" false
          (valid Validate.Revised "FOREACH (x IN [1] | MATCH (n))"));
  ]

let suite = expr_tests @ pattern_tests @ clause_tests @ validation_tests
