(** Quantifier predicates (all / any / none / single) and reduce. *)

open Cypher_graph
open Test_util

let eval src =
  first_cell (run_table Graph.empty (Printf.sprintf "RETURN %s AS r" src))

let check name expected src = check_value name expected (eval src)

let suite =
  [
    case "all" (fun () ->
        check "holds" (vbool true) "all(x IN [2, 4] WHERE x % 2 = 0)";
        check "fails" (vbool false) "all(x IN [2, 3] WHERE x % 2 = 0)";
        check "empty list" (vbool true) "all(x IN [] WHERE x > 0)");
    case "any" (fun () ->
        check "holds" (vbool true) "any(x IN [1, 2] WHERE x > 1)";
        check "fails" (vbool false) "any(x IN [1, 2] WHERE x > 9)";
        check "empty list" (vbool false) "any(x IN [] WHERE x > 0)");
    case "none" (fun () ->
        check "holds" (vbool true) "none(x IN [1, 2] WHERE x > 9)";
        check "fails" (vbool false) "none(x IN [1, 2] WHERE x > 1)");
    case "single" (fun () ->
        check "exactly one" (vbool true) "single(x IN [1, 2, 3] WHERE x = 2)";
        check "two" (vbool false) "single(x IN [2, 2] WHERE x = 2)";
        check "zero" (vbool false) "single(x IN [1] WHERE x = 2)");
    case "ternary logic in quantifiers" (fun () ->
        (* a null comparison is unknown, not false *)
        check "all with unknown" vnull "all(x IN [2, null] WHERE x % 2 = 0)";
        check "all already false" (vbool false)
          "all(x IN [1, null] WHERE x % 2 = 0)";
        check "any with unknown" vnull "any(x IN [1, null] WHERE x % 2 = 0)";
        check "any already true" (vbool true)
          "any(x IN [2, null] WHERE x % 2 = 0)";
        check "single with unknown" vnull "single(x IN [2, null] WHERE x % 2 = 0)";
        check "single two trues beats unknown" (vbool false)
          "single(x IN [2, 4, null] WHERE x % 2 = 0)");
    case "null source propagates" (fun () ->
        check "all" vnull "all(x IN null WHERE x > 0)";
        check "reduce" vnull "reduce(acc = 0, x IN null | acc + x)");
    case "reduce folds left" (fun () ->
        check "sum" (vint 10) "reduce(acc = 0, x IN [1, 2, 3, 4] | acc + x)";
        check "init on empty" (vint 7) "reduce(acc = 7, x IN [] | acc + x)";
        check "left order" (vstr "abc")
          "reduce(acc = '', x IN ['a', 'b', 'c'] | acc + x)");
    case "reduce binds both accumulator and element" (fun () ->
        check "max" (vint 9)
          "reduce(m = 0, x IN [3, 9, 4] | CASE WHEN x > m THEN x ELSE m END)");
    case "quantifiers work in WHERE" (fun () ->
        let g = graph_of "CREATE (:P {xs: [1, 2]}), (:P {xs: [2, 4]})" in
        check_rows "filtered" 1
          (run_table g "MATCH (p:P) WHERE all(x IN p.xs WHERE x % 2 = 0) RETURN p"));
    case "plain functions named like quantifiers still work" (fun () ->
        (* no binder -> ordinary (unknown) function call, caught cleanly *)
        match run_err Graph.empty "RETURN all([1, 2])" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
    case "round-trips through the pretty-printer" (fun () ->
        List.iter
          (fun src ->
            let q =
              match Cypher_parser.Parser.parse_string src with
              | Ok q -> q
              | Error e ->
                  Alcotest.failf "parse: %s" (Cypher_parser.Parser.error_to_string e)
            in
            let printed = Cypher_ast.Pretty.query_to_string q in
            match Cypher_parser.Parser.parse_string printed with
            | Ok q' when q = q' -> ()
            | Ok _ -> Alcotest.failf "round-trip changed: %s" printed
            | Error e ->
                Alcotest.failf "reparse: %s" (Cypher_parser.Parser.error_to_string e))
          [
            "RETURN all(x IN [1] WHERE x > 0) AS a";
            "RETURN single(y IN xs WHERE y = 1) AS s";
            "RETURN reduce(acc = 0, x IN [1, 2] | acc + x) AS r";
          ]);
  ]
