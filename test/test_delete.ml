(** DELETE and DETACH DELETE under both regimes: strictness, null
    replacement, legacy dangling states and the statement-end check. *)

open Cypher_graph
open Cypher_table
open Test_util
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let pair = graph_of "CREATE (:A)-[:T]->(:B)"

let atomic_tests =
  [
    case "deleting a relationship" (fun () ->
        let g = run_graph pair "MATCH ()-[r:T]->() DELETE r" in
        Alcotest.(check int) "rels" 0 (Graph.rel_count g);
        Alcotest.(check int) "nodes kept" 2 (Graph.node_count g));
    case "deleting an attached node aborts" (fun () ->
        match run_err pair "MATCH (a:A) DELETE a" with
        | Errors.Delete_dangling { rels = [ _ ]; _ } -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "deleting node and relationship in the same clause is fine" (fun () ->
        let g = run_graph pair "MATCH (a:A)-[r:T]->() DELETE r, a" in
        Alcotest.(check int) "nodes" 1 (Graph.node_count g);
        Alcotest.(check bool) "wellformed" true (Graph.is_wellformed g));
    case "the relationship may come from another record" (fun () ->
        (* strictness is judged over the whole collected set *)
        let g =
          run_graph pair "MATCH (a:A) MATCH ()-[r]->() DELETE a, r"
        in
        Alcotest.(check int) "nodes" 1 (Graph.node_count g));
    case "DETACH DELETE removes attached relationships" (fun () ->
        let g = run_graph pair "MATCH (a:A) DETACH DELETE a" in
        Alcotest.(check int) "nodes" 1 (Graph.node_count g);
        Alcotest.(check int) "rels" 0 (Graph.rel_count g));
    case "references to deleted entities become null in the table" (fun () ->
        let t =
          run_table pair "MATCH (a:A)-[r:T]->(b) DETACH DELETE a RETURN a, r, b"
        in
        let row = List.hd (Table.rows t) in
        check_value "a nulled" vnull (Record.find row "a");
        check_value "r nulled" vnull (Record.find row "r");
        Alcotest.(check bool) "b kept" true (Record.find row "b" <> vnull));
    case "deleting twice is a no-op" (fun () ->
        let g = graph_of "CREATE (:A), (:A)" in
        let g =
          run_graph g "MATCH (a:A), (b:A) DETACH DELETE a, b"
        in
        Alcotest.(check int) "all gone" 0 (Graph.node_count g));
    case "DELETE null is a no-op" (fun () ->
        let g = run_graph pair "OPTIONAL MATCH (m:Missing) DELETE m" in
        Alcotest.(check int) "unchanged" 2 (Graph.node_count g));
    case "deleting a path deletes its components" (fun () ->
        let g = run_graph pair "MATCH p = (:A)-[:T]->(:B) DELETE p" in
        Alcotest.(check int) "nodes" 0 (Graph.node_count g);
        Alcotest.(check int) "rels" 0 (Graph.rel_count g));
    case "order independence of atomic DETACH DELETE" (fun () ->
        let g = graph_of "CREATE (:N {v:1})-[:T]->(:M), (:N {v:2})-[:T]->(:M)" in
        let run order =
          run_graph ~config:(Config.with_order order Config.revised) g
            "MATCH (n:N) DETACH DELETE n"
        in
        Alcotest.check graph_iso_testable "same"
          (run Config.Forward) (run Config.Reverse));
    case "SET on a reference nulled by DELETE is a no-op" (fun () ->
        let o =
          run pair "MATCH (a:A)-[r]->(b) DETACH DELETE a SET a.x = 1 RETURN a"
        in
        Alcotest.(check int) "one node left" 1
          (Graph.node_count o.Cypher_core.Api.graph);
        check_value "returned null" vnull (first_cell o.Cypher_core.Api.table));
  ]

let legacy_tests =
  [
    case "legacy delete of an attached node goes through" (fun () ->
        (* ... as long as the statement ends wellformed *)
        let g =
          run_graph ~config:Config.cypher9 pair
            "MATCH (a:A)-[r]->(b) DELETE a DELETE r"
        in
        Alcotest.(check int) "one node" 1 (Graph.node_count g);
        Alcotest.(check bool) "wellformed at the end" true (Graph.is_wellformed g));
    case "legacy statement ending with dangling relationships errors" (fun () ->
        match
          Cypher_core.Api.run_string ~config:Config.cypher9 pair
            "MATCH (a:A) DELETE a"
        with
        | Error (Errors.Statement_dangling [ _ ]) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
        | Ok _ -> Alcotest.fail "should have failed the commit-time check");
    case "legacy: deleted node is still addressable from the table" (fun () ->
        let t =
          run_table ~config:Config.cypher9 pair
            "MATCH (a:A)-[r]->(b) DELETE a SET a.x = 1 DELETE r RETURN a, labels(a) AS ls"
        in
        let row = List.hd (Table.rows t) in
        (* the zombie node: still a node reference, empty observables *)
        Alcotest.(check bool) "node ref kept" true
          (match Record.find row "a" with Value.Node _ -> true | _ -> false);
        check_value "labels read as empty" (vlist []) (Record.find row "ls"));
    case "legacy: matching runs on the illegal intermediate graph" (fun () ->
        (* after force-deleting :A, the dangling :T no longer matches
           node-rel-node patterns; the statement itself then fails the
           commit-time check, which proves the MATCH executed on the
           illegal graph without failing *)
        match
          Cypher_core.Api.run_string ~config:Config.cypher9 pair
            "MATCH (a:A) DELETE a WITH a MATCH (x)-[r:T]->(y) RETURN r"
        with
        | Error (Errors.Statement_dangling _) -> ()
        | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
        | Ok o ->
            Alcotest.failf "expected commit-time failure, got %d rows"
              (Table.row_count o.Cypher_core.Api.table));
  ]

let suite = atomic_tests @ legacy_tests
