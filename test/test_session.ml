(** Sessions and transactions; Cypher dump round-trips. *)

open Cypher_graph
open Test_util
module Session = Cypher_core.Session
module Config = Cypher_core.Config
module Api = Cypher_core.Api
module Errors = Cypher_core.Errors

let run_ok s src =
  match Session.run s src with
  | Ok t -> t
  | Error e -> Alcotest.failf "session run failed: %s" (Errors.to_string e)

let session_tests =
  [
    case "statements advance the session graph" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:A)");
        ignore (run_ok s "CREATE (:B)");
        Alcotest.(check int) "two" 2 (Graph.node_count (Session.graph s)));
    case "failing statements leave the graph untouched" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:A)-[:T]->(:B)");
        (match Session.run s "MATCH (a:A) DELETE a" with
        | Error (Errors.Delete_dangling _) -> ()
        | _ -> Alcotest.fail "expected delete to fail");
        Alcotest.(check int) "unchanged" 2 (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "wellformed" true
          (Graph.is_wellformed (Session.graph s)));
    case "rollback restores the snapshot" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:Keep)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Discard), (:Discard)");
        Alcotest.(check int) "inside tx" 3 (Graph.node_count (Session.graph s));
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "after rollback" 1
          (Graph.node_count (Session.graph s)));
    case "commit keeps the changes" (fun () ->
        let s = Session.create Graph.empty in
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:N)");
        (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "kept" 1 (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "tx closed" false (Session.in_transaction s));
    case "transactions nest" (fun () ->
        let s = Session.create Graph.empty in
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Outer)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Inner)");
        Alcotest.(check int) "depth" 2 (Session.depth s);
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "inner undone" 1 (Graph.node_count (Session.graph s));
        (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "outer kept" 1 (Graph.node_count (Session.graph s)));
    case "commit or rollback without a transaction is an error" (fun () ->
        let s = Session.create Graph.empty in
        Alcotest.(check bool) "commit" true (Session.commit s = Error "no transaction in progress");
        Alcotest.(check bool) "rollback" true
          (Session.rollback s = Error "no transaction in progress"));
    case "reset drops graph and transactions" (fun () ->
        let s = Session.create Graph.empty in
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:N)");
        Session.reset s;
        Alcotest.(check int) "empty" 0 (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "no tx" false (Session.in_transaction s));
    case "three-deep nesting unwinds level by level" (fun () ->
        let s = Session.create Graph.empty in
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:L1)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:L2)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:L3)");
        Alcotest.(check int) "depth 3" 3 (Session.depth s);
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "depth 2" 2 (Session.depth s);
        Alcotest.(check int) "L3 undone" 2 (Graph.node_count (Session.graph s));
        (match Session.commit s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "depth 1" 1 (Session.depth s);
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "all undone" 0
          (Graph.node_count (Session.graph s));
        Alcotest.(check int) "depth 0" 0 (Session.depth s));
    case "rollback after a failed statement restores the snapshot" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:Keep)");
        Session.begin_tx s;
        ignore (run_ok s "CREATE (:Mid)");
        (match Session.run s "MATCH (k:Keep) CREATE (k)-[:T]->(:X) DELETE k" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "expected statement to fail");
        (* the failed statement itself changed nothing (statement-level
           atomicity); rollback must still undo the rest of the tx *)
        Alcotest.(check int) "mid kept until rollback" 2
          (Graph.node_count (Session.graph s));
        (match Session.rollback s with Ok () -> () | Error m -> Alcotest.fail m);
        Alcotest.(check int) "back to snapshot" 1
          (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "wellformed" true
          (Graph.is_wellformed (Session.graph s)));
    case "run surfaces update counters" (fun () ->
        let s = Session.create Graph.empty in
        let r = run_ok s "CREATE (:A {x: 1})-[:T]->(:B)" in
        let st = r.Api.r_stats in
        Alcotest.(check int) "nodes" 2 st.Cypher_core.Stats.nodes_created;
        Alcotest.(check int) "rels" 1 st.Cypher_core.Stats.rels_created;
        Alcotest.(check int) "props" 1 st.Cypher_core.Stats.props_set;
        Alcotest.(check int) "labels" 2 st.Cypher_core.Stats.labels_added;
        let r2 = run_ok s "MATCH (n) RETURN n" in
        Alcotest.(check bool) "read-only has no updates" false
          (Cypher_core.Stats.contains_updates r2.Api.r_stats));
    case "run recognises EXPLAIN and PROFILE prefixes" (fun () ->
        let s = Session.create Graph.empty in
        ignore (run_ok s "CREATE (:A)");
        let r = run_ok s "EXPLAIN CREATE (:B)" in
        Alcotest.(check bool) "plan rendered" true (r.Api.r_plan <> None);
        Alcotest.(check int) "explain does not execute" 1
          (Graph.node_count (Session.graph s));
        let r = run_ok s "PROFILE CREATE (:B)" in
        Alcotest.(check bool) "profile present" true (r.Api.r_profile <> None);
        Alcotest.(check int) "profile executes" 2
          (Graph.node_count (Session.graph s)));
  ]

(* ------------------------------------------------------------------ *)
(* Dump round-trips                                                   *)
(* ------------------------------------------------------------------ *)

let reload g =
  let script = Dump.to_cypher g in
  if script = "" then Graph.empty
  else
    match Api.run_program ~config:Cypher_core.Config.revised Graph.empty script with
    | Ok (g', _) -> g'
    | Error e -> Alcotest.failf "dump did not reload: %s\n%s" (Errors.to_string e) script

let dump_tests =
  [
    case "empty graph dumps to the empty script" (fun () ->
        Alcotest.(check string) "empty" "" (Dump.to_cypher Graph.empty));
    case "dump round-trips a small graph" (fun () ->
        let g =
          graph_of
            "CREATE (a:User {id: 1, name: 'it\\'s'})-[:KNOWS {since: 1999}]->\n\
             (b:User:Admin {id: 2}), (c {weird: [1, 'x', true]}), (a)-[:T]->(a)"
        in
        Alcotest.check graph_iso_testable "isomorphic" g (reload g));
    case "dump quotes non-plain identifiers" (fun () ->
        let _, g =
          Graph.create_node ~labels:[ "Oddly Labeled" ]
            ~props:(Props.of_list [ ("strange key", vint 1) ])
            Graph.empty
        in
        Alcotest.check graph_iso_testable "isomorphic" g (reload g));
    case "dump round-trips the paper fixtures" (fun () ->
        List.iter
          (fun g -> Alcotest.check graph_iso_testable "isomorphic" g (reload g))
          [
            Cypher_paper.Fixtures.figure1_graph;
            Cypher_paper.Fixtures.figure7a;
            Cypher_paper.Fixtures.figure8b;
            Cypher_paper.Fixtures.figure9a;
          ]);
  ]

(* random graph generator for the round-trip property *)
let gen_graph =
  QCheck.Gen.(
    let gen_label = oneofl [ "A"; "B"; "C" ] in
    let gen_value =
      oneof
        [
          map (fun i -> Value.Int i) small_signed_int;
          map (fun s -> Value.String s) (oneofl [ "x"; "it's"; "a,b" ]);
          return (Value.Bool true);
          return (Value.Float 1.5);
        ]
    in
    let gen_node =
      pair (list_size (int_bound 2) gen_label)
        (list_size (int_bound 2) (pair (oneofl [ "k"; "v"; "w" ]) gen_value))
    in
    map2
      (fun nodes raw_rels ->
        let n = List.length nodes in
        let rels =
          List.map (fun (a, ty, b) -> (a mod n, ty, b mod n)) raw_rels
        in
        Cypher_paper.Fixtures.build nodes rels)
      (list_size (int_range 1 6) gen_node)
      (list_size (int_bound 8)
         (triple (int_bound 5) (oneofl [ "T"; "U" ]) (int_bound 5))))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"dump round-trip is isomorphic" ~count:100
         (QCheck.make ~print:Graph.to_string gen_graph)
         (fun g -> Iso.isomorphic g (reload g)));
  ]

let suite = session_tests @ dump_tests @ qcheck_tests
