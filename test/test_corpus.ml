(** Corpus replay and a bounded fuzzing smoke run (tier-1).

    Every [.cy] file under [corpus/] is a regression: a hand-written
    demonstration (the exact int/float and NaN comparison bugs fail
    here on the pre-fix tree) or a shrunk fuzzer failure appended by
    [fuzz_main -corpus].  The smoke run drives a bounded number of
    freshly generated cases through all nine oracles so tier-1 keeps
    the whole pipeline honest without the cost of [@fuzz]. *)

open Cypher_fuzz
open Test_util

let corpus_dir = "corpus"

let corpus_cases =
  if not (Sys.file_exists corpus_dir) then []
  else
    List.map
      (fun loaded ->
        match loaded with
        | Error msg ->
            case ("corpus entry parses: " ^ msg) (fun () -> Alcotest.fail msg)
        | Ok e ->
            case ("corpus " ^ e.Corpus.name) (fun () ->
                match Corpus.check e with
                | Ok () -> ()
                | Error detail -> Alcotest.fail detail))
      (Corpus.load_dir corpus_dir)

let roundtrip_cases =
  [
    case "corpus entries survive render -> parse" (fun () ->
        List.iter
          (fun loaded ->
            match loaded with
            | Error msg -> Alcotest.fail msg
            | Ok e -> (
                match Corpus.parse_entry ~name:e.Corpus.name (Corpus.render_entry e) with
                | Error msg -> Alcotest.fail msg
                | Ok e' ->
                    Alcotest.(check bool)
                      ("entry " ^ e.Corpus.name ^ " unchanged")
                      true (e = e')))
          (if Sys.file_exists corpus_dir then Corpus.load_dir corpus_dir else []));
  ]

let smoke_cases =
  [
    case "fuzz smoke: 60 cases x 10 oracles" (fun () ->
        let report = Fuzz.run ~seed:20260807 ~count:60 () in
        match report.Fuzz.failures with
        | [] -> ()
        | f :: _ ->
            Alcotest.failf "fuzz failure [%s] at iteration %d: %s\nstatement: %s"
              f.Fuzz.oracle f.Fuzz.iteration f.Fuzz.detail
              (Cypher_ast.Pretty.query_to_string f.Fuzz.query));
  ]

let suite = corpus_cases @ roundtrip_cases @ smoke_cases
