(** The streaming bulk loader: CSV validation (structured errors with
    file and line, never a partial graph), batching into [`Bulk]
    journal frames, the closed-store failure mode, and durability of a
    bulk load through crash recovery. *)

open Cypher_graph
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors
module Session = Cypher_core.Session
module Store = Cypher_storage.Store
module Bulk = Cypher_storage.Bulk
module Wal = Cypher_storage.Wal

let tmpdir () =
  let path = Filename.temp_file "cypher_bulk" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_tmpdir f =
  let dir = tmpdir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let nodes_csv =
  "id,labels,name,age\n\
   u1,User,ada,36\n\
   u2,User;Admin,bob,\n\
   p1,Product,widget,2\n"

let rels_csv =
  "src,tgt,type,since\nu1,u2,KNOWS,2001\nu1,p1,ORDERED,\nu2,p1,ORDERED,2020\n"

let fresh_session () = Session.create ~config:Config.revised Graph.empty

let load ?batch_size session ~nodes ~rels =
  Bulk.load_strings ?batch_size session ~nodes ~rels

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_error ~sub result =
  match result with
  | Ok (_ : Bulk.report) -> Alcotest.failf "load succeeded, expected %S" sub
  | Error e ->
      let msg = Errors.to_string e in
      Alcotest.(check bool)
        (Printf.sprintf "%S appears in %S" sub msg)
        true (contains ~sub msg)

let validation_tests =
  [
    Test_util.case "happy path: graph, report and batching" (fun () ->
        let s = fresh_session () in
        match load ~batch_size:2 s ~nodes:nodes_csv ~rels:rels_csv with
        | Error e -> Alcotest.failf "load: %s" (Errors.to_string e)
        | Ok r ->
            Alcotest.(check int) "nodes" 3 r.Bulk.nodes_created;
            Alcotest.(check int) "rels" 3 r.Bulk.rels_created;
            (* 3 nodes + 3 rels at batch_size 2: 2 node frames, 2 rel
               frames *)
            Alcotest.(check int) "frames" 4 r.Bulk.batches;
            let g = Session.graph s in
            Alcotest.(check int) "node count" 3 (Graph.node_count g);
            Alcotest.(check int) "rel count" 3 (Graph.rel_count g);
            (* typed properties and multi-labels made it through *)
            match
              Session.run s
                "MATCH (a:Admin:User {name: 'bob'})<-[k:KNOWS {since: \
                 2001}]-(u) RETURN u.name AS n, u.age AS age"
            with
            | Error e -> Alcotest.failf "query: %s" (Errors.to_string e)
            | Ok res ->
                Alcotest.(check int) "one row" 1
                  (Cypher_table.Table.row_count res.Cypher_core.Api.r_table));
    Test_util.case "CRLF and quoted fields load" (fun () ->
        let s = fresh_session () in
        let nodes = "id,name\r\nu1,\"a,b\"\r\nu2,line\r\n" in
        let rels = "src,tgt,type\r\nu1,u2,R\r\n" in
        match load s ~nodes ~rels with
        | Error e -> Alcotest.failf "load: %s" (Errors.to_string e)
        | Ok r ->
            Alcotest.(check int) "nodes" 2 r.Bulk.nodes_created;
            Alcotest.(check int) "rels" 1 r.Bulk.rels_created);
    Test_util.case "empty nodes file is a structured error" (fun () ->
        let s = fresh_session () in
        check_error ~sub:"bulk load (<nodes>): empty file"
          (load s ~nodes:"" ~rels:rels_csv));
    Test_util.case "missing required column names the header" (fun () ->
        let s = fresh_session () in
        check_error ~sub:"missing required column \"id\""
          (load s ~nodes:"name\nada\n" ~rels:rels_csv));
    Test_util.case "duplicate node id reports both lines" (fun () ->
        let s = fresh_session () in
        check_error
          ~sub:"(<nodes>:3): duplicate node id \"u1\" (first seen at line 2)"
          (load s ~nodes:"id\nu1\nu1\n" ~rels:"src,tgt,type\n"));
    Test_util.case "row wider than the header carries its line" (fun () ->
        let s = fresh_session () in
        check_error ~sub:"(<nodes>:3): row has 3 fields, header has 2"
          (load s ~nodes:"id,name\nu1,a\nu2,b,EXTRA\n" ~rels:"src,tgt,type\n"));
    Test_util.case "unknown endpoint carries its line" (fun () ->
        let s = fresh_session () in
        check_error ~sub:"(<rels>:3): unknown target node id \"ghost\""
          (load s ~nodes:"id\nu1\nu2\n"
             ~rels:"src,tgt,type\nu1,u2,R\nu1,ghost,R\n"));
    Test_util.case "a failed load leaves no partial graph" (fun () ->
        let s = fresh_session () in
        (match load s ~nodes:"id\nu1\nu2\n"
                 ~rels:"src,tgt,type\nu1,u2,R\nu1,ghost,R\n"
         with
        | Ok _ -> Alcotest.fail "expected failure"
        | Error _ -> ());
        Alcotest.(check int) "no nodes" 0 (Graph.node_count (Session.graph s));
        Alcotest.(check bool) "session usable, not mid-transaction" false
          (Session.in_transaction s));
  ]

(* ------------------------------------------------------------------ *)
(* The closed store and durability                                    *)
(* ------------------------------------------------------------------ *)

let storage_tests =
  [
    Test_util.case "statement after close fails structured, graph frozen"
      (fun () ->
        with_tmpdir (fun dir ->
            match Store.open_db (Filename.concat dir "db") with
            | Error e -> Alcotest.fail e
            | Ok (store, session) -> (
                (match Session.run session "CREATE (:Live)" with
                | Ok _ -> ()
                | Error e -> Alcotest.failf "%s" (Errors.to_string e));
                Store.close store;
                match Session.run session "CREATE (:Ghost)" with
                | Ok _ -> Alcotest.fail "update succeeded on a closed store"
                | Error e ->
                    (* a structured update error, not a bare Failure *)
                    (match e with
                    | Errors.Update_error msg ->
                        Alcotest.(check bool) "message names the store" true
                          (contains ~sub:"is closed" msg)
                    | e ->
                        Alcotest.failf "expected Update_error, got %s"
                          (Errors.to_string e));
                    (* write-ahead: the failed statement did not advance
                       the in-memory graph *)
                    Alcotest.(check int) "graph unchanged" 1
                      (Graph.node_count (Session.graph session)))));
    Test_util.case "bulk load on a closed store rolls back" (fun () ->
        with_tmpdir (fun dir ->
            match Store.open_db (Filename.concat dir "db") with
            | Error e -> Alcotest.fail e
            | Ok (store, session) ->
                Store.close store;
                (match load session ~nodes:"id\nu1\n" ~rels:"src,tgt,type\n" with
                | Ok _ -> Alcotest.fail "load succeeded on a closed store"
                | Error e ->
                    Alcotest.(check bool) "structured" true
                      (match e with Errors.Update_error _ -> true | _ -> false));
                Alcotest.(check int) "graph unchanged" 0
                  (Graph.node_count (Session.graph session))));
    Test_util.case "bulk load survives close/reopen (journal replay)"
      (fun () ->
        with_tmpdir (fun dir ->
            let db = Filename.concat dir "db" in
            let before =
              match Store.open_db db with
              | Error e -> Alcotest.fail e
              | Ok (store, session) ->
                  (match Session.run session "CREATE (:Seed {id: 0})" with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "%s" (Errors.to_string e));
                  (match load ~batch_size:2 session ~nodes:nodes_csv ~rels:rels_csv with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "load: %s" (Errors.to_string e));
                  (* and a statement on top of the bulk data *)
                  (match
                     Session.run session
                       "MATCH (u:User {name: 'ada'}) SET u.seen = true"
                   with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "%s" (Errors.to_string e));
                  let g = Graph.to_string (Session.graph session) in
                  Store.close store;
                  g
            in
            match Store.open_db db with
            | Error e -> Alcotest.fail e
            | Ok (store, session) ->
                let after = Graph.to_string (Session.graph session) in
                Store.close store;
                Alcotest.(check string) "recovered graph" before after));
    Test_util.case "bulk frames replay after a snapshot id remap" (fun () ->
        with_tmpdir (fun dir ->
            let db = Filename.concat dir "db" in
            let before =
              match Store.open_db db with
              | Error e -> Alcotest.fail e
              | Ok (store, session) ->
                  (* create a gap in the id sequence, then snapshot: the
                     reloaded base has remapped ids, so a frame pinning
                     internal ids would rebind — raw-id resolution must
                     not care *)
                  (match Session.run session "CREATE (:A), (:B), (:C)" with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "%s" (Errors.to_string e));
                  (match Session.run session "MATCH (b:B) DELETE b" with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "%s" (Errors.to_string e));
                  (match Store.compact store session with
                  | Ok () -> ()
                  | Error e -> Alcotest.fail e);
                  (match load session ~nodes:"id\nx\ny\n"
                           ~rels:"src,tgt,type\nx,y,R\n"
                   with
                  | Ok _ -> ()
                  | Error e -> Alcotest.failf "load: %s" (Errors.to_string e));
                  let g = Session.graph session in
                  Store.close store;
                  g
            in
            match Store.open_db db with
            | Error e -> Alcotest.fail e
            | Ok (store, session) ->
                let after = Session.graph session in
                Store.close store;
                (* recovery replays on a snapshot whose ids are a
                   monotone remap of the originals, so compare up to
                   isomorphism, like the snapshot round-trip tests *)
                Alcotest.check Test_util.graph_iso_testable "recovered graph"
                  before after));
  ]

(* ------------------------------------------------------------------ *)
(* Frame round-trip                                                   *)
(* ------------------------------------------------------------------ *)

let frame_tests =
  [
    Test_util.case "frames pct-encode awkward field values" (fun () ->
        let s = fresh_session () in
        let nodes = "id,note\n\"a b\",\"x% y\"\n\"c d\",plain\n" in
        let rels = "src,tgt,type\n\"a b\",\"c d\",\"HAS SPACE\"\n" in
        (match load s ~nodes ~rels with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "load: %s" (Errors.to_string e));
        match
          Session.run s "MATCH (a {note: 'x% y'})-[r]->(b) RETURN type(r) AS t"
        with
        | Error e -> Alcotest.failf "query: %s" (Errors.to_string e)
        | Ok res -> (
            match Cypher_table.Table.rows res.Cypher_core.Api.r_table with
            | [ row ] ->
                Alcotest.(check bool) "type round-trips" true
                  (Value.equal_strict
                     (Cypher_table.Record.find row "t")
                     (Value.String "HAS SPACE"))
            | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)));
    Test_util.case "apply_frame rejects garbage" (fun () ->
        let ids = Bulk.create_idmap () in
        (match Bulk.apply_frame ~ids Graph.empty "X what" with
        | Ok _ -> Alcotest.fail "accepted a malformed line"
        | Error _ -> ());
        match Bulk.apply_frame ~ids Graph.empty "R a b T -" with
        | Ok _ -> Alcotest.fail "accepted an unresolved endpoint"
        | Error _ -> ());
  ]

let suite = validation_tests @ storage_tests @ frame_tests
