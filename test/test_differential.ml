(** Differential testing: the production MERGE ALL / MERGE SAME agree
    with the naive transcription of the Section 8.2 definitions
    ([Cypher_paper.Reference]) on random driving tables — both in the
    output graph (up to isomorphism) and in the table's shape. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
open Cypher_paper
module Config = Cypher_core.Config

let gen_row =
  QCheck.Gen.(
    map3
      (fun cid pid date ->
        Record.of_list
          [
            ("cid", Value.Int cid);
            ("pid", (match pid with 0 -> Value.Null | p -> Value.Int p));
            ("date", Value.String (string_of_int date));
          ])
      (int_range 1 3) (int_range 0 2) (int_range 0 5))

let gen_table =
  QCheck.Gen.(
    map
      (fun rows -> Table.make [ "cid"; "pid"; "date" ] rows)
      (list_size (int_range 0 8) gen_row))

let arb_table = QCheck.make ~print:Table.to_string gen_table

let merge_src = Fixtures.example5_merge

let patterns_of src =
  match Runner.parse_clause src with
  | Merge { patterns; _ } -> patterns
  | _ -> failwith "expected MERGE"

let patterns = patterns_of merge_src

(* a non-empty base graph so condition (iii)/(v) — old entities collapse
   only with themselves — is exercised: it contains two equal nodes that
   MUST stay distinct under SAME *)
let base_graph =
  Fixtures.build
    [
      ([ "User" ], [ ("id", Value.Int 1) ]);
      ([ "User" ], [ ("id", Value.Int 1) ]);
      ([ "Product" ], [ ("id", Value.Int 2) ]);
    ]
    [ (0, "ORDERED", 2) ]

let production mode g table =
  Runner.run_merge_mode Config.permissive ~mode merge_src (g, table)

let agree mode reference g table =
  let gp, tp = production mode g table in
  let gr, tr = reference g table patterns in
  Iso.isomorphic gp gr
  && Table.row_count tp = Table.row_count tr
  && Table.columns tp = Table.columns tr

let tests =
  [
    QCheck.Test.make
      ~name:"MERGE ALL agrees with the Section 8.2 transcription (empty graph)"
      ~count:120 arb_table
      (fun table -> agree Merge_all Reference.merge_all Graph.empty table);
    QCheck.Test.make
      ~name:"MERGE SAME agrees with the Section 8.2 transcription (empty graph)"
      ~count:120 arb_table
      (fun table -> agree Merge_same Reference.merge_same Graph.empty table);
    QCheck.Test.make
      ~name:"MERGE ALL agrees on a pre-populated graph"
      ~count:120 arb_table
      (fun table -> agree Merge_all Reference.merge_all base_graph table);
    QCheck.Test.make
      ~name:"MERGE SAME agrees on a pre-populated graph"
      ~count:120 arb_table
      (fun table -> agree Merge_same Reference.merge_same base_graph table);
    QCheck.Test.make
      ~name:"reference SAME keeps pre-existing duplicates distinct"
      ~count:60 arb_table
      (fun table ->
        let g, _ = Reference.merge_same base_graph table patterns in
        (* the two equal :User{id:1} nodes of the base graph survive
           (condition iii: old nodes collapse only with themselves);
           failing cid=1 rows may add at most one more *)
        let count =
          List.length
            (List.filter
               (fun (n : Graph.node) ->
                 Graph.has_label g n.Graph.n_id "User"
                 && Value.equal_strict
                      (Props.get n.Graph.n_props "id")
                      (Value.Int 1))
               (Graph.nodes g))
        in
        count = 2 || count = 3);
  ]

let figure_checks =
  [
    Test_util.case "reference reproduces Figures 7a and 7c" (fun () ->
        let g_all, _ =
          Reference.merge_all Graph.empty Fixtures.example5_table patterns
        in
        let g_same, _ =
          Reference.merge_same Graph.empty Fixtures.example5_table patterns
        in
        Alcotest.check Test_util.graph_iso_testable "7a" Fixtures.figure7a g_all;
        Alcotest.check Test_util.graph_iso_testable "7c" Fixtures.figure7c g_same);
    Test_util.case "reference reproduces Figures 9a and 9b" (fun () ->
        let ps = patterns_of Fixtures.example7_merge in
        let g_all, _ =
          Reference.merge_all Fixtures.example7_graph Fixtures.example7_table ps
        in
        let g_same, _ =
          Reference.merge_same Fixtures.example7_graph Fixtures.example7_table ps
        in
        Alcotest.check Test_util.graph_iso_testable "9a" Fixtures.figure9a g_all;
        Alcotest.check Test_util.graph_iso_testable "9b" Fixtures.figure9b g_same);
  ]

(* ------------------------------------------------------------------ *)
(* Planner on/off differential sweep                                  *)
(* ------------------------------------------------------------------ *)

(* Cost-guided planning must only reorder the enumeration of candidate
   bindings: with the planner on and off, a read query returns the same
   bag of rows and an update query produces the same graph (up to the
   ids assigned along the changed enumeration order). *)
module Api = Cypher_core.Api

let planner_on = Config.revised
let planner_off = Config.with_planner Config.Off Config.revised

(* a graph with skewed statistics (few vendors, many users), a label-less
   fringe, and a registered property index, so every anchor kind — bound,
   prop-index, label and scan — is exercised *)
let sweep_graph =
  let g =
    Fixtures.marketplace_graph ~vendors:3 ~products:11 ~users:40
      ~orders_per_user:2
  in
  let _, g = Graph.create_node ~props:(Props.of_list [ ("loose", Value.Int 1) ]) g in
  Graph.add_prop_index ~label:"User" ~key:"id" g

let read_queries =
  [
    "MATCH (u:User) RETURN count(*) AS n";
    "MATCH (u:User)-[:ORDERED]->(p:Product) RETURN u.id AS uid, p.id AS pid";
    "MATCH (u:User)-[o:ORDERED]->(p:Product)<-[f:OFFERS]-(v:Vendor) RETURN \
     u.id AS uid, v.id AS vid";
    "MATCH (v:Vendor)-[:OFFERS]->(p:Product)<-[:ORDERED]-(u:User {id: \
     100003}) RETURN v.name AS vn, p.name AS pn";
    "MATCH (a)-[r]->(b) WHERE a.id = 0 RETURN b.id AS bid";
    "MATCH (a)-[:OFFERS|ORDERED]-(b:Product) RETURN count(*) AS n";
    "MATCH (v:Vendor)-[:OFFERS*1..2]->(x) RETURN v.id AS vid, x.id AS xid";
    "MATCH p = (u:User {id: 100007})-[:ORDERED]->(x) RETURN length(p) AS l, \
     x.id AS xid";
    "MATCH (u:User), (v:Vendor) WHERE u.id % 10 = v.id RETURN u.id AS uid, \
     v.id AS vid";
    "MATCH (u:User {id: 100011}) OPTIONAL MATCH (u)-[:ORDERED]->(p) RETURN \
     p.id AS pid";
  ]

let update_queries =
  [
    "MATCH (u:User)-[:ORDERED]->(p:Product) SET p.sold = true RETURN \
     count(*) AS n";
    "MATCH (v:Vendor)-[:OFFERS]->(p:Product)<-[:ORDERED]-(u:User) CREATE \
     (u)-[:KNOWS]->(v) RETURN count(*) AS n";
    "MATCH (u:User) WHERE u.id % 7 = 0 SET u:Flagged REMOVE u.name RETURN \
     count(*) AS n";
    "MERGE SAME (:User {id: 100001})-[:ORDERED]->(:Product {id: 1004})";
    "MATCH (u:User)-[:ORDERED]->(p:Product) WHERE u.id % 7 = 0 SET p.hot = \
     true WITH u, count(*) AS n MERGE ALL (u)-[:SCORED]->(:Score {v: n}) \
     RETURN count(*) AS total";
  ]

let run_with config src =
  match Api.run_string ~config sweep_graph src with
  | Ok { Api.graph; table } -> (graph, table)
  | Error e -> Alcotest.failf "query failed: %s" (Cypher_core.Errors.to_string e)

(* bag equality of tables: rows as sorted binding lists *)
let sorted_rows t =
  List.sort compare (List.map Record.bindings (Table.rows t))

let planner_checks =
  List.map
    (fun src ->
      Test_util.case ("planner on/off agree (read): " ^ src) (fun () ->
          let g_on, t_on = run_with planner_on src in
          let g_off, t_off = run_with planner_off src in
          Alcotest.(check bool) "graph untouched (on)" true (g_on == sweep_graph || Iso.isomorphic g_on sweep_graph);
          Alcotest.(check bool) "graph untouched (off)" true (g_off == sweep_graph || Iso.isomorphic g_off sweep_graph);
          Alcotest.(check (list string)) "columns" (Table.columns t_off) (Table.columns t_on);
          Alcotest.(check bool) "same row bag" true
            (sorted_rows t_on = sorted_rows t_off)))
    read_queries
  @ List.map
      (fun src ->
        Test_util.case ("planner on/off agree (update): " ^ src) (fun () ->
            let g_on, t_on = run_with planner_on src in
            let g_off, t_off = run_with planner_off src in
            Alcotest.check Test_util.graph_iso_testable "graphs" g_off g_on;
            Alcotest.(check (list string)) "columns" (Table.columns t_off) (Table.columns t_on);
            Alcotest.(check int) "row count" (Table.row_count t_off) (Table.row_count t_on)))
      update_queries

(* MERGE under every revised mode with the planner on and off: the split
   into Tmatch/Tfail must not depend on the enumeration order *)
let planner_merge_checks =
  [
    QCheck.Test.make
      ~name:"planner on/off agree across MERGE modes (random tables)"
      ~count:60 arb_table
      (fun table ->
        List.for_all
          (fun mode ->
            let g_on, t_on =
              Runner.run_merge_mode
                (Config.with_planner Config.On Config.permissive)
                ~mode merge_src (base_graph, table)
            in
            let g_off, t_off =
              Runner.run_merge_mode
                (Config.with_planner Config.Off Config.permissive)
                ~mode merge_src (base_graph, table)
            in
            Iso.isomorphic g_on g_off
            && Table.row_count t_on = Table.row_count t_off
            && Table.columns t_on = Table.columns t_off)
          [ Merge_all; Merge_grouping; Merge_weak_collapse; Merge_collapse;
            Merge_same ]);
  ]

(* ------------------------------------------------------------------ *)
(* Planner × parallelism × backend 2×2×2 sweep                        *)
(* ------------------------------------------------------------------ *)

(* Parallel read phases must be unobservable (DESIGN.md "Parallel read
   phases"): for each planner setting, running with the domain pool
   fanned out must produce byte-identical tables and graphs to the
   serial run.  This is strictly stronger than the bag equality the
   planner sweep above settles for — parallelism may not even reorder.
   The chunk threshold is forced down to 1 so the small sweep tables
   actually split across domains.  The sweep runs once per physical
   backend: the compact CSR layout must be just as unobservable as the
   pool (same enumeration order, hence the same bytes). *)
module Pool = Cypher_util.Pool

let parallelism_checks =
  let settings =
    [ ("planner-on", planner_on); ("planner-off", planner_off) ]
  in
  let backends = [ ("persistent", `Persistent); ("compact", `Compact) ] in
  List.concat_map
    (fun (plabel, cfg) ->
      List.concat_map
        (fun (blabel, backend) ->
          let cfg = Config.with_backend backend cfg in
          List.map
            (fun src ->
              Test_util.case
                (Printf.sprintf "par=4 byte-identical to par=0 (%s, %s): %s"
                   plabel blabel src)
                (fun () ->
                  let serial_g, serial_t =
                    run_with (Config.with_parallelism 0 cfg) src
                  in
                  let par_g, par_t =
                    Pool.with_chunk_min 1 (fun () ->
                        run_with (Config.with_parallelism 4 cfg) src)
                  in
                  Alcotest.(check string) "table bytes"
                    (Table.to_string serial_t) (Table.to_string par_t);
                  Alcotest.(check string) "graph bytes"
                    (Graph.to_string serial_g) (Graph.to_string par_g)))
            (read_queries @ update_queries))
        backends)
    settings

(* ------------------------------------------------------------------ *)
(* Planner × backend × row-representation sweep                       *)
(* ------------------------------------------------------------------ *)

(* The slot-compiled row pipeline is a pure representation change: for
   every planner setting and physical backend, the sweep under
   [Config.rows = `Slots] must produce byte-identical tables and graphs
   to the record-row run — same rows, same order, same graph, so the
   array-row fast paths (including the matcher's deferred and
   natural-order enumerations) are unobservable. *)
let rows_checks =
  let settings =
    [ ("planner-on", planner_on); ("planner-off", planner_off) ]
  in
  let backends = [ ("persistent", `Persistent); ("compact", `Compact) ] in
  List.concat_map
    (fun (plabel, cfg) ->
      List.concat_map
        (fun (blabel, backend) ->
          let cfg = Config.with_backend backend cfg in
          List.map
            (fun src ->
              Test_util.case
                (Printf.sprintf "slots byte-identical to records (%s, %s): %s"
                   plabel blabel src)
                (fun () ->
                  let rec_g, rec_t =
                    run_with (Config.with_rows `Records cfg) src
                  in
                  let slot_g, slot_t =
                    run_with (Config.with_rows `Slots cfg) src
                  in
                  Alcotest.(check string) "table bytes"
                    (Table.to_string rec_t) (Table.to_string slot_t);
                  Alcotest.(check string) "graph bytes"
                    (Graph.to_string rec_g) (Graph.to_string slot_g)))
            (read_queries @ update_queries))
        backends)
    settings

let suite =
  List.map QCheck_alcotest.to_alcotest tests
  @ figure_checks @ planner_checks
  @ List.map QCheck_alcotest.to_alcotest planner_merge_checks
  @ parallelism_checks @ rows_checks
