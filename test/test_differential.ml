(** Differential testing: the production MERGE ALL / MERGE SAME agree
    with the naive transcription of the Section 8.2 definitions
    ([Cypher_paper.Reference]) on random driving tables — both in the
    output graph (up to isomorphism) and in the table's shape. *)

open Cypher_graph
open Cypher_table
open Cypher_ast.Ast
open Cypher_paper
module Config = Cypher_core.Config

let gen_row =
  QCheck.Gen.(
    map3
      (fun cid pid date ->
        Record.of_list
          [
            ("cid", Value.Int cid);
            ("pid", (match pid with 0 -> Value.Null | p -> Value.Int p));
            ("date", Value.String (string_of_int date));
          ])
      (int_range 1 3) (int_range 0 2) (int_range 0 5))

let gen_table =
  QCheck.Gen.(
    map
      (fun rows -> Table.make [ "cid"; "pid"; "date" ] rows)
      (list_size (int_range 0 8) gen_row))

let arb_table = QCheck.make ~print:Table.to_string gen_table

let merge_src = Fixtures.example5_merge

let patterns_of src =
  match Runner.parse_clause src with
  | Merge { patterns; _ } -> patterns
  | _ -> failwith "expected MERGE"

let patterns = patterns_of merge_src

(* a non-empty base graph so condition (iii)/(v) — old entities collapse
   only with themselves — is exercised: it contains two equal nodes that
   MUST stay distinct under SAME *)
let base_graph =
  Fixtures.build
    [
      ([ "User" ], [ ("id", Value.Int 1) ]);
      ([ "User" ], [ ("id", Value.Int 1) ]);
      ([ "Product" ], [ ("id", Value.Int 2) ]);
    ]
    [ (0, "ORDERED", 2) ]

let production mode g table =
  Runner.run_merge_mode Config.permissive ~mode merge_src (g, table)

let agree mode reference g table =
  let gp, tp = production mode g table in
  let gr, tr = reference g table patterns in
  Iso.isomorphic gp gr
  && Table.row_count tp = Table.row_count tr
  && Table.columns tp = Table.columns tr

let tests =
  [
    QCheck.Test.make
      ~name:"MERGE ALL agrees with the Section 8.2 transcription (empty graph)"
      ~count:120 arb_table
      (fun table -> agree Merge_all Reference.merge_all Graph.empty table);
    QCheck.Test.make
      ~name:"MERGE SAME agrees with the Section 8.2 transcription (empty graph)"
      ~count:120 arb_table
      (fun table -> agree Merge_same Reference.merge_same Graph.empty table);
    QCheck.Test.make
      ~name:"MERGE ALL agrees on a pre-populated graph"
      ~count:120 arb_table
      (fun table -> agree Merge_all Reference.merge_all base_graph table);
    QCheck.Test.make
      ~name:"MERGE SAME agrees on a pre-populated graph"
      ~count:120 arb_table
      (fun table -> agree Merge_same Reference.merge_same base_graph table);
    QCheck.Test.make
      ~name:"reference SAME keeps pre-existing duplicates distinct"
      ~count:60 arb_table
      (fun table ->
        let g, _ = Reference.merge_same base_graph table patterns in
        (* the two equal :User{id:1} nodes of the base graph survive
           (condition iii: old nodes collapse only with themselves);
           failing cid=1 rows may add at most one more *)
        let count =
          List.length
            (List.filter
               (fun (n : Graph.node) ->
                 Graph.has_label g n.Graph.n_id "User"
                 && Value.equal_strict
                      (Props.get n.Graph.n_props "id")
                      (Value.Int 1))
               (Graph.nodes g))
        in
        count = 2 || count = 3);
  ]

let figure_checks =
  [
    Test_util.case "reference reproduces Figures 7a and 7c" (fun () ->
        let g_all, _ =
          Reference.merge_all Graph.empty Fixtures.example5_table patterns
        in
        let g_same, _ =
          Reference.merge_same Graph.empty Fixtures.example5_table patterns
        in
        Alcotest.check Test_util.graph_iso_testable "7a" Fixtures.figure7a g_all;
        Alcotest.check Test_util.graph_iso_testable "7c" Fixtures.figure7c g_same);
    Test_util.case "reference reproduces Figures 9a and 9b" (fun () ->
        let ps = patterns_of Fixtures.example7_merge in
        let g_all, _ =
          Reference.merge_all Fixtures.example7_graph Fixtures.example7_table ps
        in
        let g_same, _ =
          Reference.merge_same Fixtures.example7_graph Fixtures.example7_table ps
        in
        Alcotest.check Test_util.graph_iso_testable "9a" Fixtures.figure9a g_all;
        Alcotest.check Test_util.graph_iso_testable "9b" Fixtures.figure9b g_same);
  ]

let suite = List.map QCheck_alcotest.to_alcotest tests @ figure_checks
