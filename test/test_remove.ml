(** REMOVE: labels and properties; idempotence; null targets. *)

open Cypher_graph
open Test_util

let base = graph_of "CREATE (:A:B {x: 1, y: 2})"

let the_node g = List.hd (Graph.nodes g)

let suite =
  [
    case "removes a property" (fun () ->
        let g = run_graph base "MATCH (n) REMOVE n.x" in
        Alcotest.(check (list string)) "keys" [ "y" ]
          (Props.keys (the_node g).Graph.n_props));
    case "removes labels" (fun () ->
        let g = run_graph base "MATCH (n) REMOVE n:B" in
        Alcotest.(check (list string)) "labels" [ "A" ]
          (Graph.labels_of g (the_node g).Graph.n_id));
    case "removes several labels at once" (fun () ->
        let g = run_graph base "MATCH (n) REMOVE n:A:B" in
        Alcotest.(check (list string)) "labels" []
          (Graph.labels_of g (the_node g).Graph.n_id));
    case "removing a missing property is a no-op" (fun () ->
        let g = run_graph base "MATCH (n) REMOVE n.zzz" in
        Alcotest.(check (list string)) "keys" [ "x"; "y" ]
          (Props.keys (the_node g).Graph.n_props));
    case "removing on a null binding is a no-op" (fun () ->
        let g = run_graph base "OPTIONAL MATCH (m:Missing) REMOVE m.x" in
        Alcotest.(check int) "unchanged" 1 (Graph.node_count g));
    case "mixed remove items apply left to right" (fun () ->
        let g = run_graph base "MATCH (n) REMOVE n.x, n:A, n.y" in
        Alcotest.(check (list string)) "keys" []
          (Props.keys (the_node g).Graph.n_props);
        Alcotest.(check (list string)) "labels" [ "B" ]
          (Graph.labels_of g (the_node g).Graph.n_id));
    case "remove relationship property" (fun () ->
        let g = graph_of "CREATE (:A)-[:T {w: 1}]->(:B)" in
        let g = run_graph g "MATCH ()-[r]->() REMOVE r.w" in
        Alcotest.(check bool) "empty" true
          (Props.is_empty (List.hd (Graph.rels g)).Graph.r_props));
    case "legacy and revised REMOVE agree" (fun () ->
        let src = "MATCH (n) REMOVE n.x, n:B" in
        Alcotest.check graph_iso_testable "same"
          (run_graph ~config:Cypher_core.Config.cypher9 base src)
          (run_graph ~config:Cypher_core.Config.revised base src));
  ]
