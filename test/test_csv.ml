(** The CSV substrate: parsing, typing, driving-table conversion,
    round-trip. *)

open Cypher_graph
open Cypher_table
open Cypher_csv
open Test_util

let suite =
  [
    case "basic parsing" (fun () ->
        Alcotest.(check (list (list string)))
          "rows"
          [ [ "a"; "b" ]; [ "1"; "2" ] ]
          (Csv.parse_string "a,b\n1,2\n"));
    case "quoted fields with commas, quotes and newlines" (fun () ->
        Alcotest.(check (list (list string)))
          "rows"
          [ [ "x,y"; "he said \"hi\""; "two\nlines" ] ]
          (Csv.parse_string "\"x,y\",\"he said \"\"hi\"\"\",\"two\nlines\"\n"));
    case "crlf line endings" (fun () ->
        Alcotest.(check (list (list string)))
          "rows" [ [ "a" ]; [ "b" ] ] (Csv.parse_string "a\r\nb\r\n"));
    case "missing trailing newline" (fun () ->
        Alcotest.(check (list (list string)))
          "rows" [ [ "a" ]; [ "b" ] ] (Csv.parse_string "a\nb"));
    case "field typing" (fun () ->
        check_value "int" (vint 42) (Csv.type_field "42");
        check_value "float" (Value.Float 2.5) (Csv.type_field "2.5");
        check_value "bool" (vbool true) (Csv.type_field "true");
        check_value "null" vnull (Csv.type_field "");
        check_value "explicit null" vnull (Csv.type_field "null");
        check_value "string" (vstr "abc") (Csv.type_field "abc"));
    case "table conversion with header" (fun () ->
        let t = Csv.table_of_string "cid,pid\n98,125\n99,\n" in
        Alcotest.(check (list string)) "columns" [ "cid"; "pid" ] (Table.columns t);
        check_rows "two rows" 2 t;
        let second = List.nth (Table.rows t) 1 in
        check_value "empty is null" vnull (Record.find second "pid"));
    case "untyped mode keeps strings" (fun () ->
        let t = Csv.table_of_string ~typed:false "a\n42\n" in
        check_value "string kept" (vstr "42")
          (Record.find (List.hd (Table.rows t)) "a"));
    case "ragged rows are rejected" (fun () ->
        match Csv.table_of_string "a,b\n1\n" with
        | exception Csv.Csv_error _ -> ()
        | _ -> Alcotest.fail "should have raised");
    case "render round-trip" (fun () ->
        let t = Csv.table_of_string "a,b\n1,x\n,true\n" in
        let t2 = Csv.table_of_string (Csv.to_string t) in
        Alcotest.(check bool) "same bag" true (Table.equal_as_bags t t2));
    case "unterminated quote is an error" (fun () ->
        match Csv.parse_string "\"oops" with
        | exception Csv.Csv_error _ -> ()
        | _ -> Alcotest.fail "should have raised");
    case "unterminated quote reports its opening line" (fun () ->
        (* the quote opens on line 3; the scan then swallows the rest of
           the input (including more newlines) looking for the close *)
        match Csv.parse_string "a,b\n1,2\n3,\"oops\nstill open\n" with
        | exception Csv.Csv_error e ->
            Alcotest.(check int) "line" 3 e.Csv.line;
            let contains ~sub s =
              let n = String.length sub and m = String.length s in
              let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
              go 0
            in
            Alcotest.(check bool) "message names the line" true
              (contains ~sub:"line 3" e.Csv.message)
        | rows ->
            Alcotest.failf "should have raised, got %d rows" (List.length rows));
    case "crlf inside quotes is preserved verbatim" (fun () ->
        Alcotest.(check (list (list string)))
          "rows"
          [ [ "a\r\nb"; "x" ]; [ "1"; "2" ] ]
          (Csv.parse_string "\"a\r\nb\",x\r\n1,2\r\n"));
    case "trailing newline does not add an empty row" (fun () ->
        Alcotest.(check (list (list string)))
          "lf" [ [ "a" ]; [ "b" ] ] (Csv.parse_string "a\nb\n");
        Alcotest.(check (list (list string)))
          "crlf" [ [ "a" ]; [ "b" ] ] (Csv.parse_string "a\r\nb\r\n");
        Alcotest.(check (list (list string)))
          "none" [ [ "a" ]; [ "b" ] ] (Csv.parse_string "a\r\nb");
        (* a quoted field ending exactly at a trailing CRLF *)
        Alcotest.(check (list (list string)))
          "quoted before crlf" [ [ "a" ] ] (Csv.parse_string "\"a\"\r\n"));
  ]

let file_tests =
  [
    case "table_of_file reads from disk" (fun () ->
        let path = Filename.temp_file "cypher_csv" ".csv" in
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc "a,b\n1,x\n2,\n");
        let t = Csv.table_of_file path in
        Sys.remove path;
        check_rows "rows" 2 t;
        Alcotest.(check (list string)) "columns" [ "a"; "b" ] (Table.columns t));
    case "example orders.csv loads" (fun () ->
        if Sys.file_exists "../../examples/data/orders.csv" then
          let t = Csv.table_of_file "../../examples/data/orders.csv" in
          Alcotest.(check bool) "has rows" true (Table.row_count t > 0)
        else ());
  ]

let suite = suite @ file_tests
