(** Error reporting: every typed error constructor is reachable, carries
    useful payload, and renders a readable message. *)

open Cypher_graph
open Test_util
module Api = Cypher_core.Api
module Config = Cypher_core.Config
module Errors = Cypher_core.Errors

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub s i m = sub || loop (i + 1)) in
  m = 0 || loop 0

let check_msg name needle e =
  let msg = Errors.to_string e in
  Alcotest.(check bool)
    (Printf.sprintf "%s: %S in %S" name needle msg)
    true (contains msg needle)

let suite =
  [
    case "Parse_error carries position and expectation" (fun () ->
        match Api.run_string Graph.empty "MATCH (n RETURN n" with
        | Error (Errors.Parse_error m) ->
            Alcotest.(check bool) "line" true (contains m "line 1");
            Alcotest.(check bool) "expected" true (contains m "expected")
        | _ -> Alcotest.fail "expected a parse error");
    case "Validation_error explains the dialect rule" (fun () ->
        check_msg "plain merge" "MERGE ALL or MERGE SAME"
          (run_err Graph.empty "MERGE (:X)");
        check_msg "cypher9 WITH rule" "WITH"
          (run_err ~config:Config.cypher9 Graph.empty
             "CREATE (n:X) MATCH (m) RETURN m"));
    case "Eval_error names the variable or function" (fun () ->
        check_msg "unknown variable" "`nope`" (run_err Graph.empty "RETURN nope");
        check_msg "unknown function" "frob" (run_err Graph.empty "RETURN frob(1)");
        check_msg "missing parameter" "$absent"
          (run_err Graph.empty "RETURN $absent"));
    case "Set_conflict shows both values" (fun () ->
        let g = graph_of "CREATE (:T), (:S {v: 1}), (:S {v: 2})" in
        match run_err g "MATCH (t:T), (s:S) SET t.v = s.v" with
        | Errors.Set_conflict { key; value1; value2; _ } as e ->
            Alcotest.(check string) "key" "v" key;
            Alcotest.(check bool) "values differ" false
              (Value.equal_strict value1 value2);
            check_msg "message" "would be set to both" e
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "Delete_dangling lists the offending relationships" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B), (:A2)-[:U]->(:B2)" in
        match run_err g "MATCH (a:A) DELETE a" with
        | Errors.Delete_dangling { rels = [ _ ]; _ } as e ->
            check_msg "hint" "DETACH DELETE" e
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "Statement_dangling fires at the statement boundary" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B)" in
        match
          Api.run_string ~config:Config.cypher9 g "MATCH (a:A) DELETE a"
        with
        | Error (Errors.Statement_dangling _ as e) ->
            check_msg "message" "dangling" e
        | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
        | Ok _ -> Alcotest.fail "should have failed");
    case "Update_error explains bound-variable misuse" (fun () ->
        check_msg "create bound" "already bound"
          (run_err Graph.empty "CREATE (a:A) WITH a CREATE (a:B)");
        check_msg "merge null" "null"
          (run_err Graph.empty
             "OPTIONAL MATCH (m:Gone) MERGE ALL (m)-[:T]->(:X)"));
    case "failed statements do not change the graph" (fun () ->
        let g = graph_of "CREATE (:Keep)" in
        (match Api.run_string g "MATCH (k:Keep) CREATE (:New) WITH k RETURN boom" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "should have failed");
        (* the API is functional: the original graph value is untouched *)
        Alcotest.(check int) "unchanged" 1 (Graph.node_count g));
    case "lexer errors surface as parse errors with position" (fun () ->
        match Api.run_string Graph.empty "RETURN @" with
        | Error (Errors.Parse_error m) ->
            Alcotest.(check bool) "column" true (contains m "column")
        | _ -> Alcotest.fail "expected a parse error");
    case "aggregates in WHERE are rejected with a clear message" (fun () ->
        check_msg "agg in where" "RETURN/WITH"
          (run_err (graph_of "CREATE (:P)") "MATCH (p:P) WHERE count(*) > 0 RETURN p"));
    case "Internal_error renders and is a value, not a crash" (fun () ->
        (* broken engine invariants (former [assert false] sites in the
           matcher) now surface through this constructor so a server
           connection can report them and live on *)
        check_msg "internal" "internal error: invariant broke"
          (Errors.Internal_error "invariant broke");
        match Errors.internal_error "case %d" 7 with
        | exception Errors.Error (Errors.Internal_error m) ->
            Alcotest.(check string) "formatted payload" "case 7" m
        | _ -> Alcotest.fail "internal_error did not raise Internal_error");
    case "Ctx.Internal carries the formatted invariant message" (fun () ->
        (* the matcher raises through [Ctx.internal]; the API layer maps
           the exception to [Errors.Internal_error] *)
        match Cypher_eval.Ctx.internal "lost %s" "range" with
        | exception Cypher_eval.Ctx.Internal m ->
            Alcotest.(check string) "message" "lost range" m
        | _ -> Alcotest.fail "Ctx.internal did not raise");
  ]
