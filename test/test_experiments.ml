(** Every paper experiment must reproduce (E1–E10, DESIGN.md §4). *)

open Cypher_paper
open Test_util

let suite =
  List.map
    (fun make ->
      let r = make () in
      case (r.Experiments.id ^ ": " ^ r.Experiments.title) (fun () ->
          let r = make () in
          if not r.Experiments.passed then
            Alcotest.failf "experiment %s does not reproduce the paper:\n%s"
              r.Experiments.id r.Experiments.observed))
    [
      Experiments.e1; Experiments.e2; Experiments.e3; Experiments.e4;
      Experiments.e5; Experiments.e6; Experiments.e7; Experiments.e8;
      Experiments.e9; Experiments.e10; Experiments.e11;
    ]
