(** Expression semantics [[e]]G,u: arithmetic, ternary-logic predicates,
    null propagation, built-in functions, CASE, comprehensions. *)

open Cypher_graph
open Test_util

(** Evaluates a standalone expression via RETURN on an empty graph. *)
let eval ?config src =
  first_cell (run_table ?config Graph.empty (Printf.sprintf "RETURN %s AS r" src))

let eval_on g src = first_cell (run_table g (Printf.sprintf "MATCH (n) RETURN %s AS r" src))

let check name expected src = check_value name expected (eval src)

let arithmetic_tests =
  [
    case "integer arithmetic" (fun () ->
        check "add" (vint 7) "3 + 4";
        check "sub" (vint (-1)) "3 - 4";
        check "mul" (vint 12) "3 * 4";
        check "integer division truncates" (vint 2) "7 / 3";
        check "modulo" (vint 1) "7 % 3");
    case "mixed int/float promotes" (fun () ->
        check "add" (Value.Float 4.5) "3 + 1.5";
        check "div" (Value.Float 3.5) "7 / 2.0");
    case "power always returns float" (fun () ->
        check "pow" (Value.Float 8.0) "2 ^ 3");
    case "unary minus" (fun () -> check "neg" (vint (-5)) "-(2 + 3)");
    case "string concatenation with +" (fun () ->
        check "ss" (vstr "ab") "'a' + 'b'";
        check "si" (vstr "a1") "'a' + 1";
        check "is" (vstr "1a") "1 + 'a'");
    case "list concatenation with +" (fun () ->
        check "ll" (vlist [ vint 1; vint 2 ]) "[1] + [2]";
        check "le" (vlist [ vint 1; vint 2 ]) "[1] + 2";
        check "el" (vlist [ vint 1; vint 2 ]) "1 + [2]");
    case "null propagates through arithmetic" (fun () ->
        check "add" vnull "1 + null";
        check "mul" vnull "null * 2";
        check "neg" vnull "-null");
    case "division by zero is an error" (fun () ->
        match run_err Graph.empty "RETURN 1 / 0" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
  ]

let predicate_tests =
  [
    case "comparisons return booleans" (fun () ->
        check "lt" (vbool true) "1 < 2";
        check "ge" (vbool false) "1 >= 2";
        check "eq" (vbool true) "1 = 1.0";
        check "neq" (vbool true) "1 <> 2");
    case "comparisons with null return null" (fun () ->
        check "eq" vnull "1 = null";
        check "lt" vnull "null < 2";
        check "neq" vnull "null <> null");
    case "incomparable types compare to null" (fun () ->
        check "int vs string" vnull "1 < 'a'");
    case "boolean connectives use three-valued logic" (fun () ->
        check "true and null" vnull "true AND null";
        check "false and null" (vbool false) "false AND null";
        check "true or null" (vbool true) "true OR null";
        check "false or null" vnull "false OR null";
        check "not null" vnull "NOT null";
        check "xor null" vnull "true XOR null");
    case "IS NULL is never null" (fun () ->
        check "is null" (vbool true) "null IS NULL";
        check "is not null" (vbool false) "null IS NOT NULL";
        check "value" (vbool false) "1 IS NULL");
    case "IN with nulls" (fun () ->
        check "found" (vbool true) "2 IN [1, 2]";
        check "missing" (vbool false) "3 IN [1, 2]";
        check "missing with null member" vnull "3 IN [1, null]";
        check "found despite null member" (vbool true) "1 IN [1, null]";
        check "null lhs" vnull "null IN [1]";
        check "null lhs empty list" (vbool false) "null IN []");
    case "string predicates" (fun () ->
        check "starts" (vbool true) "'hello' STARTS WITH 'he'";
        check "ends" (vbool true) "'hello' ENDS WITH 'lo'";
        check "contains" (vbool true) "'hello' CONTAINS 'ell'";
        check "contains not" (vbool false) "'hello' CONTAINS 'xyz'";
        check "null operand" vnull "null STARTS WITH 'a'");
    case "chained comparisons associate left" (fun () ->
        (* (1 < 2) < true? left-assoc: Cmp(Lt, Cmp(Lt,1,2), 3) — bool vs
           int is incomparable, so null *)
        check "chain" vnull "1 < 2 < 3");
  ]

let structure_tests =
  [
    case "list indexing" (fun () ->
        check "first" (vint 10) "[10, 20, 30][0]";
        check "negative" (vint 30) "[10, 20, 30][-1]";
        check "out of range" vnull "[10][5]";
        check "null index" vnull "[10][null]");
    case "list slicing" (fun () ->
        check "middle" (vlist [ vint 20; vint 30 ]) "[10, 20, 30, 40][1..3]";
        check "open end" (vlist [ vint 30; vint 40 ]) "[10, 20, 30, 40][2..]";
        check "open start" (vlist [ vint 10 ]) "[10, 20, 30, 40][..1]";
        check "negative bounds" (vlist [ vint 30 ]) "[10, 20, 30, 40][-2..-1]");
    case "map literals and access" (fun () ->
        check "dot" (vint 1) "{a: 1}.a";
        check "index" (vint 1) "{a: 1}['a']";
        check "missing key" vnull "{a: 1}.b");
    case "property access on null is null" (fun () -> check "prop" vnull "null.x");
    case "case with operand" (fun () ->
        check "hit" (vstr "one") "CASE 1 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END";
        check "default" (vstr "many") "CASE 9 WHEN 1 THEN 'one' ELSE 'many' END";
        check "no default" vnull "CASE 9 WHEN 1 THEN 'one' END");
    case "searched case" (fun () ->
        check "first true wins" (vstr "big") "CASE WHEN 5 > 3 THEN 'big' WHEN true THEN 'other' END");
    case "list comprehension" (fun () ->
        check "filter and map" (vlist [ vint 4; vint 6 ])
          "[x IN [1, 2, 3] WHERE x > 1 | x * 2]";
        check "filter only" (vlist [ vint 2; vint 3 ]) "[x IN [1, 2, 3] WHERE x > 1]";
        check "map only" (vlist [ vint 2; vint 4; vint 6 ]) "[x IN [1, 2, 3] | x * 2]";
        check "null source" vnull "[x IN null | x]");
  ]

let function_tests =
  [
    case "coalesce returns first non-null" (fun () ->
        check "second" (vint 2) "coalesce(null, 2, 3)";
        check "all null" vnull "coalesce(null, null)");
    case "size and length" (fun () ->
        check "list" (vint 3) "size([1, 2, 3])";
        check "string" (vint 5) "size('hello')";
        check "null" vnull "size(null)");
    case "head / last / tail" (fun () ->
        check "head" (vint 1) "head([1, 2])";
        check "last" (vint 2) "last([1, 2])";
        check "tail" (vlist [ vint 2 ]) "tail([1, 2])";
        check "head of empty" vnull "head([])");
    case "range" (fun () ->
        check "simple" (vlist [ vint 1; vint 2; vint 3 ]) "range(1, 3)";
        check "step" (vlist [ vint 0; vint 2; vint 4 ]) "range(0, 5, 2)";
        check "descending" (vlist [ vint 3; vint 2 ]) "range(3, 2, -1)";
        check "empty" (vlist []) "range(3, 1)");
    case "reverse" (fun () ->
        check "list" (vlist [ vint 2; vint 1 ]) "reverse([1, 2])";
        check "string" (vstr "cba") "reverse('abc')");
    case "string functions" (fun () ->
        check "upper" (vstr "AB") "toUpper('ab')";
        check "lower" (vstr "ab") "toLower('AB')";
        check "trim" (vstr "x") "trim('  x  ')";
        check "substring" (vstr "ell") "substring('hello', 1, 3)";
        check "split" (vlist [ vstr "a"; vstr "b" ]) "split('a,b', ',')";
        check "replace" (vstr "b.b") "replace('a.a', 'a', 'b')";
        check "left" (vstr "he") "left('hello', 2)";
        check "right" (vstr "lo") "right('hello', 2)");
    case "conversions" (fun () ->
        check "toInteger of string" (vint 42) "toInteger('42')";
        check "toInteger garbage" vnull "toInteger('abc')";
        check "toFloat" (Value.Float 2.5) "toFloat('2.5')";
        check "toString" (vstr "42") "toString(42)";
        check "toBoolean" (vbool true) "toBoolean('true')");
    case "numeric functions" (fun () ->
        check "abs" (vint 3) "abs(-3)";
        check "sign" (vint (-1)) "sign(-3)";
        check "sqrt" (Value.Float 3.0) "sqrt(9)";
        check "floor" (Value.Float 1.0) "floor(1.7)";
        check "ceil" (Value.Float 2.0) "ceil(1.2)");
    case "unknown function errors" (fun () ->
        match run_err Graph.empty "RETURN frobnicate(1)" with
        | Cypher_core.Errors.Eval_error m ->
            Alcotest.(check bool) "mentions name" true (String.length m > 0)
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
    case "entity functions" (fun () ->
        let g = graph_of "CREATE (:Person {name: 'Ada', age: 36})" in
        check_value "labels" (vlist [ vstr "Person" ]) (eval_on g "labels(n)");
        check_value "keys" (vlist [ vstr "age"; vstr "name" ]) (eval_on g "keys(n)");
        check_value "properties"
          (Value.map_of_list [ ("age", vint 36); ("name", vstr "Ada") ])
          (eval_on g "properties(n)");
        check_value "exists prop" (vbool true) (eval_on g "exists(n.name)");
        check_value "exists missing" (vbool false) (eval_on g "exists(n.email)"));
    case "relationship functions" (fun () ->
        let g = graph_of "CREATE (:A)-[:KNOWS {since: 1999}]->(:B)" in
        let t =
          run_table g
            "MATCH (a)-[r]->(b) RETURN type(r) AS t, startNode(r) = a AS s, \
             endNode(r) = b AS e, r.since AS y"
        in
        let row = List.hd (Cypher_table.Table.rows t) in
        check_value "type" (vstr "KNOWS") (Cypher_table.Record.find row "t");
        check_value "start" (vbool true) (Cypher_table.Record.find row "s");
        check_value "end" (vbool true) (Cypher_table.Record.find row "e");
        check_value "prop" (vint 1999) (Cypher_table.Record.find row "y"));
    case "id returns distinct identities" (fun () ->
        let g = graph_of "CREATE (:A), (:B)" in
        let t = run_table g "MATCH (n) RETURN id(n) AS i" in
        let ids = column t "i" in
        Alcotest.(check int) "two ids" 2 (List.length (List.sort_uniq compare ids)));
    case "parameters reach expressions" (fun () ->
        let config =
          Cypher_core.Config.(with_param "who" (vstr "Bob") revised)
        in
        check_value "param" (vstr "Bob") (eval ~config "$who");
        match run_err Graph.empty "RETURN $missing" with
        | Cypher_core.Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Cypher_core.Errors.to_string e));
  ]

let suite = arithmetic_tests @ predicate_tests @ structure_tests @ function_tests

(* additional breadth coverage for builtins and evaluator edges *)
let edge_tests =
  [
    case "numeric function edges" (fun () ->
        check "round half" (Value.Float 2.0) "round(1.5)";
        check "exp of 0" (Value.Float 1.0) "exp(0)";
        check "log of 1" (Value.Float 0.0) "log(1)";
        check "sqrt of int" (Value.Float 2.0) "sqrt(4)";
        check "sign zero" (vint 0) "sign(0)";
        check "abs of float" (Value.Float 2.5) "abs(-2.5)";
        check "null through sqrt" vnull "sqrt(null)");
    case "string function edges" (fun () ->
        check "ltrim" (vstr "x ") "ltrim('  x ')";
        check "rtrim" (vstr " x") "rtrim(' x  ')";
        check "substring beyond end" (vstr "") "substring('ab', 5)";
        check "left beyond end" (vstr "ab") "left('ab', 9)";
        check "split into single" (vlist [ vstr "abc" ]) "split('abc', ',')";
        check "replace all occurrences" (vstr "yyy") "replace('xxx', 'x', 'y')";
        check "toString of list" (vstr "[1, 2]") "toString([1, 2])";
        check "toString of bool" (vstr "true") "toString(true)");
    case "range edges" (fun () ->
        check "single element" (vlist [ vint 5 ]) "range(5, 5)";
        check "negative step skips" (vlist [ vint 5; vint 3 ]) "range(5, 2, -2)");
    case "coalesce edge cases" (fun () ->
        check "first wins" (vint 1) "coalesce(1, 2)";
        check "no args" vnull "coalesce()");
    case "deeply nested expressions do not break the parser" (fun () ->
        let deep = String.make 200 '(' ^ "1" ^ String.make 200 ')' in
        check "nested" (vint 1) deep);
    case "long operator chains" (fun () ->
        let sum = String.concat " + " (List.init 200 string_of_int) in
        check "sum 0..199" (vint (199 * 200 / 2)) sum);
    case "case falls through all whens" (fun () ->
        check "fallthrough" vnull "CASE 5 WHEN 1 THEN 'a' WHEN 2 THEN 'b' END");
    case "boolean operator chains mix correctly" (fun () ->
        check "precedence" (vbool true) "true OR false AND false";
        check "xor chain" (vbool false) "true XOR true XOR false");
    case "float formatting round-trips through toString" (fun () ->
        check "whole float" (vstr "2.0") "toString(2.0)");
    case "unicode-ish bytes survive string functions" (fun () ->
        check "size counts bytes" (vint 3) "size('日')";
        check "concat" (vstr "日x") "'日' + 'x'");
  ]

let suite = suite @ edge_tests

let trig_tests =
  [
    case "trigonometry and constants" (fun () ->
        check "sin 0" (Value.Float 0.0) "sin(0)";
        check "cos 0" (Value.Float 1.0) "cos(0)";
        check "atan2 quadrant" (Value.Float (Float.atan2 1.0 1.0)) "atan2(1, 1)";
        check "pi" (Value.Float Float.pi) "pi()";
        check "e" (Value.Float (Float.exp 1.0)) "e()";
        check "log10" (Value.Float 2.0) "log10(100)";
        check "null propagates" vnull "sin(null)")
  ]

let suite = suite @ trig_tests
