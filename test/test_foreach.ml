(** FOREACH: per-element update execution, nesting, scoping. *)

open Cypher_graph
open Test_util
module Errors = Cypher_core.Errors

let suite =
  [
    case "creates one entity per element" (fun () ->
        let g = run_graph Graph.empty "FOREACH (x IN [1, 2, 3] | CREATE (:N {v: x}))" in
        Alcotest.(check int) "three" 3 (Graph.node_count g));
    case "loop variable does not leak" (fun () ->
        match run_err Graph.empty "FOREACH (x IN [1] | CREATE (:N)) RETURN x" with
        | Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "body sees outer bindings" (fun () ->
        let g =
          run_graph Graph.empty
            "CREATE (a:Hub) WITH a FOREACH (x IN [1, 2] | CREATE (a)-[:T]->(:Leaf {v: x}))"
        in
        Alcotest.(check int) "rels from hub" 2 (Graph.rel_count g));
    case "runs per driving-table record" (fun () ->
        let g =
          run_graph Graph.empty
            "UNWIND [1, 2] AS row FOREACH (x IN [1, 2] | CREATE (:N))"
        in
        Alcotest.(check int) "2x2" 4 (Graph.node_count g));
    case "null list is a no-op" (fun () ->
        let g = run_graph Graph.empty "FOREACH (x IN null | CREATE (:N))" in
        Alcotest.(check int) "none" 0 (Graph.node_count g));
    case "non-list source is an error" (fun () ->
        match run_err Graph.empty "FOREACH (x IN 42 | CREATE (:N))" with
        | Errors.Eval_error _ -> ()
        | e -> Alcotest.failf "wrong error: %s" (Errors.to_string e));
    case "nested FOREACH" (fun () ->
        let g =
          run_graph Graph.empty
            "FOREACH (x IN [1, 2] | FOREACH (y IN [1, 2, 3] | CREATE (:N {x: x, y: y})))"
        in
        Alcotest.(check int) "2x3" 6 (Graph.node_count g));
    case "SET inside FOREACH follows the configured regime" (fun () ->
        let g = graph_of "CREATE (:N {v: 0})" in
        let g = run_graph g "MATCH (n:N) FOREACH (x IN [5] | SET n.v = x)" in
        let n = List.hd (Graph.nodes g) in
        check_value "set" (vint 5) (Props.get n.Graph.n_props "v"));
    case "DELETE inside FOREACH" (fun () ->
        let g = graph_of "CREATE (:N), (:N)" in
        let g =
          run_graph g
            "MATCH (n:N) WITH collect(n) AS ns FOREACH (n IN ns | DETACH DELETE n)"
        in
        Alcotest.(check int) "emptied" 0 (Graph.node_count g));
    case "the driving table passes through unchanged" (fun () ->
        let t =
          run_table Graph.empty
            "UNWIND [1, 2] AS x FOREACH (y IN [1] | CREATE (:N)) RETURN x"
        in
        check_rows "two rows" 2 t);
  ]

let merge_in_foreach_tests =
  [
    case "MERGE inside FOREACH follows the clause's own mode" (fun () ->
        let g =
          run_graph Graph.empty
            "FOREACH (x IN [1, 1, 2] | MERGE SAME (:K {v: x}))"
        in
        (* each element runs its own MERGE SAME on the current graph:
           the second 1 matches what the first created *)
        Alcotest.(check int) "two nodes" 2 (Graph.node_count g));
    case "REMOVE inside FOREACH" (fun () ->
        let g = graph_of "CREATE (:N {a: 1, b: 2})" in
        let g =
          run_graph g "MATCH (n:N) FOREACH (k IN ['a', 'b'] | REMOVE n.a)"
        in
        let n = List.hd (Graph.nodes g) in
        Alcotest.(check (list string)) "only b" [ "b" ]
          (Props.keys n.Graph.n_props));
  ]

let suite = suite @ merge_in_foreach_tests
