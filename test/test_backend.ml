(** The compact backend: symbol interning, CSR snapshot lifecycle
    (build at read-phase boundaries, reuse while the graph's content is
    physically unchanged, invalidate on update), and end-to-end
    equivalence with the persistent backend on a small workload. *)

open Cypher_graph
module Config = Cypher_core.Config
module Api = Cypher_core.Api
module Symtab = Cypher_graph.Symtab

(* ------------------------------------------------------------------ *)
(* Symtab                                                             *)
(* ------------------------------------------------------------------ *)

let symtab_tests =
  [
    Test_util.case "intern is idempotent and stable" (fun () ->
        let a = Symtab.intern "test_backend_A" in
        let b = Symtab.intern "test_backend_B" in
        Alcotest.(check bool) "distinct strings, distinct symbols" true (a <> b);
        Alcotest.(check int) "re-intern returns the same symbol" a
          (Symtab.intern "test_backend_A");
        Alcotest.(check int) "find agrees with intern" a
          (Option.get (Symtab.find "test_backend_A"));
        Alcotest.(check string) "name inverts intern" "test_backend_A"
          (Symtab.name a);
        Alcotest.(check string) "name inverts intern (b)" "test_backend_B"
          (Symtab.name b));
    Test_util.case "find never allocates" (fun () ->
        let before = Symtab.count () in
        Alcotest.(check (option int))
          "unknown string" None
          (Symtab.find "test_backend_never_interned");
        Alcotest.(check int) "count unchanged" before (Symtab.count ()));
    Test_util.case "name rejects an id never handed out" (fun () ->
        Alcotest.check_raises "out of range"
          (Invalid_argument "Symtab.name: unknown symbol 9999999") (fun () ->
            ignore (Symtab.name 9999999)));
  ]

(* ------------------------------------------------------------------ *)
(* CSR lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

let small_graph () =
  let g = Graph.empty in
  let n0, g = Graph.create_node ~labels:[ "A" ] g in
  let n1, g =
    Graph.create_node ~labels:[ "B" ]
      ~props:(Props.of_list [ ("k", Value.Int 7) ])
      g
  in
  let _, g = Graph.create_rel ~src:n0 ~tgt:n1 ~r_type:"R" g in
  (n0, n1, g)

let lifecycle_tests =
  [
    Test_util.case "persistent backend never builds a CSR" (fun () ->
        let _, _, g = small_graph () in
        Graph.ensure_csr g;
        Alcotest.(check bool) "no view" true (Graph.csr_view g = None));
    Test_util.case "csr_view is passive, ensure_csr builds" (fun () ->
        let _, _, g = small_graph () in
        let g = Graph.with_backend `Compact g in
        Alcotest.(check bool) "no view before ensure" true
          (Graph.csr_view g = None);
        Graph.ensure_csr g;
        Alcotest.(check bool) "view after ensure" true
          (Graph.csr_view g <> None));
    Test_util.case "CSR is reused while content is unchanged" (fun () ->
        let _, _, g = small_graph () in
        let g = Graph.with_backend `Compact g in
        Graph.ensure_csr g;
        let c1 = Option.get (Graph.csr_view g) in
        Graph.ensure_csr g;
        let c2 = Option.get (Graph.csr_view g) in
        Alcotest.(check bool) "physically the same snapshot" true (c1 == c2);
        (* re-flagging the backend (what Api does per statement) must
           not invalidate either *)
        let g' = Graph.with_backend `Compact (Graph.with_backend `Persistent g) in
        Alcotest.(check bool) "survives backend re-flagging" true
          (match Graph.csr_view g' with Some c -> c == c1 | None -> false));
    Test_util.case "update invalidates, next ensure rebuilds" (fun () ->
        let _, _, g = small_graph () in
        let g = Graph.with_backend `Compact g in
        Graph.ensure_csr g;
        let c1 = Option.get (Graph.csr_view g) in
        let _, g2 = Graph.create_node ~labels:[ "C" ] g in
        Alcotest.(check bool) "stale view not served" true
          (Graph.csr_view g2 = None);
        Graph.ensure_csr g2;
        let c2 = Option.get (Graph.csr_view g2) in
        Alcotest.(check bool) "rebuilt, not reused" true (not (c1 == c2));
        Alcotest.(check int) "new snapshot sees the new node" 3
          c2.Graph.Csr.node_count);
    Test_util.case "CSR content mirrors the maps" (fun () ->
        let n0, n1, g = small_graph () in
        let g = Graph.with_backend `Compact g in
        Graph.ensure_csr g;
        let c = Option.get (Graph.csr_view g) in
        Alcotest.(check int) "node count" 2 c.Graph.Csr.node_count;
        Alcotest.(check int) "rel count" 1 c.Graph.Csr.rel_count;
        let i0 = Graph.Csr.node_idx c n0 and i1 = Graph.Csr.node_idx c n1 in
        Alcotest.(check bool) "both nodes present" true (i0 >= 0 && i1 >= 0);
        let sym_b = Option.get (Symtab.find "B") in
        Alcotest.(check bool) "label arena" true
          (Graph.Csr.has_label_sym c i1 sym_b
          && not (Graph.Csr.has_label_sym c i0 sym_b));
        let sym_k = Option.get (Symtab.find "k") in
        Alcotest.(check bool) "property arena" true
          (Value.equal_strict (Graph.Csr.node_prop_sym c i1 sym_k)
             (Value.Int 7));
        Alcotest.(check bool) "footprint is positive" true
          (Graph.Csr.footprint_words c > 0));
  ]

(* ------------------------------------------------------------------ *)
(* Backend equivalence on a small workload                            *)
(* ------------------------------------------------------------------ *)

let workload =
  [
    "CREATE (:User {id: 1, name: 'ada'})-[:KNOWS {since: 2001}]->(:User \
     {id: 2, name: 'bob'})";
    "CREATE (:User {id: 3})";
    "MATCH (a:User)-[k:KNOWS]->(b:User) RETURN a.name, k.since, b.name";
    "MATCH (a:User) WHERE a.id % 2 = 1 SET a:Odd RETURN count(*) AS n";
    "MATCH (a:Odd) RETURN a.id ORDER BY a.id";
    "MERGE ALL (:User {id: 2})-[:KNOWS]->(:User {id: 3})";
    "MATCH (a)-[r]-(b) RETURN count(*) AS n";
    "MATCH (a:User) DETACH DELETE a RETURN count(*) AS n";
  ]

let run_workload backend =
  let config = Config.with_backend backend Config.revised in
  let outs = Buffer.create 256 in
  let g =
    List.fold_left
      (fun g src ->
        match Api.run_string_full ~config g src with
        | Error e -> Alcotest.failf "%s: %s" src (Cypher_core.Errors.to_string e)
        | Ok r ->
            Buffer.add_string outs
              (Cypher_table.Table.to_string r.Api.r_table);
            Buffer.add_string outs (Cypher_core.Stats.to_string r.Api.r_stats);
            Buffer.add_char outs '\n';
            r.Api.r_graph)
      Graph.empty workload
  in
  (Graph.to_string g, Buffer.contents outs)

let equivalence_tests =
  [
    Test_util.case "workload is byte-identical across backends" (fun () ->
        let gp, op = run_workload `Persistent in
        let gc, oc = run_workload `Compact in
        Alcotest.(check string) "tables and counters" op oc;
        Alcotest.(check string) "final graph" gp gc);
    Test_util.case "config backend flows through the Api" (fun () ->
        let _, _, g = small_graph () in
        let config = Config.with_backend `Compact Config.revised in
        match Api.run_string ~config g "MATCH (a:A)-[:R]->(b:B) RETURN b.k" with
        | Error e -> Alcotest.failf "%s" (Cypher_core.Errors.to_string e)
        | Ok o ->
            Alcotest.(check int) "one row" 1
              (Cypher_table.Table.row_count o.Api.table);
            (* the statement ran compact: its result graph carries the
               flag and, being content-identical, still sees the CSR *)
            Alcotest.(check bool) "backend flag" true
              (Graph.backend o.Api.graph = `Compact));
  ]

(* ------------------------------------------------------------------ *)
(* count( * ) fusion                                                  *)
(* ------------------------------------------------------------------ *)

(* A graph exercising every corner the counting traversal specialises
   over: a directed cycle, a self-loop, parallel relationships, and a
   relationship property. *)
let fusion_graph config =
  List.fold_left
    (fun g src ->
      match Api.run_string ~config g src with
      | Error e -> Alcotest.failf "%s: %s" src (Cypher_core.Errors.to_string e)
      | Ok o -> o.Api.graph)
    Graph.empty
    [
      "CREATE (a:User {id: 1})-[:KNOWS {since: 2001}]->(b:User {id: \
       2})-[:KNOWS]->(c:User {id: 3})-[:KNOWS]->(a)";
      "MATCH (a:User {id: 1}) CREATE (a)-[:KNOWS]->(a)";
      "MATCH (a:User {id: 1}), (b:User {id: 2}) CREATE (a)-[:LIKES]->(b), \
       (a)-[:LIKES]->(b)";
    ]

let fusion_queries =
  [
    "MATCH (a:User)-[:KNOWS]->(b) RETURN count(*) AS n";
    (* cyclic: the far end must rebind to the already-bound [a] *)
    "MATCH (a)-[:KNOWS]->(a) RETURN count(*) AS loops";
    (* two patterns: relationship isomorphism spans the tuple *)
    "MATCH (a)-[r]->(b), (c)-[s]->(d) RETURN count(*) AS pairs";
    "MATCH (a)-[:KNOWS*1..2]->(b) RETURN count(*) AS n";
    (* undirected enumeration, self-loop taken once *)
    "MATCH (a)-[:KNOWS]-(b) RETURN count(*) AS n";
    (* relationship property map: the record-free leaf must stand down *)
    "MATCH (a)-[:KNOWS {since: 2001}]->(b) RETURN count(*) AS n";
    (* a WITH-driven MATCH: one count per driving row, summed *)
    "MATCH (a:User) WITH a MATCH (a)-[:KNOWS]->(b) RETURN count(*) AS n";
    "MATCH (missing:Nope) RETURN count(*) AS n";
  ]

let fusion_configs =
  [
    ("revised planner persistent", Config.revised);
    ("revised planner compact", Config.with_backend `Compact Config.revised);
    ("revised naive persistent", Config.with_planner Config.Off Config.revised);
    ( "revised naive compact",
      Config.with_backend `Compact (Config.with_planner Config.Off Config.revised)
    );
    ("cypher9 compact", Config.with_backend `Compact Config.cypher9);
  ]

let fusion_tests =
  [
    Test_util.case "fused count( * ) agrees with the unfused PROFILE path"
      (fun () ->
        (* PROFILE disables the fusion, so the same statement runs the
           materialising pipeline: rows, then the aggregate projection *)
        List.iter
          (fun (cname, config) ->
            let g = fusion_graph config in
            List.iter
              (fun q ->
                let fused =
                  match Api.run_string ~config g q with
                  | Error e ->
                      Alcotest.failf "%s [%s]: %s" q cname
                        (Cypher_core.Errors.to_string e)
                  | Ok o -> Cypher_table.Table.to_string o.Api.table
                in
                let unfused =
                  match Api.run_string_full ~config g ("PROFILE " ^ q) with
                  | Error e ->
                      Alcotest.failf "PROFILE %s [%s]: %s" q cname
                        (Cypher_core.Errors.to_string e)
                  | Ok r -> Cypher_table.Table.to_string r.Api.r_table
                in
                Alcotest.(check string)
                  (Printf.sprintf "%s [%s]" q cname)
                  unfused fused)
              fusion_queries)
          fusion_configs)
  ]

(* ------------------------------------------------------------------ *)
(* Multi-domain CSR publication                                       *)
(* ------------------------------------------------------------------ *)

let stress_tests =
  [
    Test_util.case "concurrent ensure_csr publishes one valid snapshot"
      (fun () ->
        (* the server hands one graph value to many domains at once; the
           cache cell is an [Atomic.t] so racing builders can never
           publish a torn entry.  Hammer [ensure_csr] + a CSR-served
           read from several domains against fresh graphs and check
           every domain computes the same row count. *)
        let config = Config.with_backend `Compact Config.revised in
        let build n =
          let src =
            Printf.sprintf
              "UNWIND range(1, %d) AS i CREATE (:S {k: i})-[:T]->(:D {k: i})"
              n
          in
          match Api.run_string ~config Graph.empty src with
          | Ok o -> o.Api.graph
          | Error e -> Alcotest.fail (Cypher_core.Errors.to_string e)
        in
        for round = 1 to 10 do
          let g = build (20 + round) in
          let expected = 20 + round in
          let domains =
            List.init 4 (fun _ ->
                Domain.spawn (fun () ->
                    Graph.ensure_csr g;
                    match
                      Api.run_string ~config g
                        "MATCH (:S)-[:T]->(d:D) RETURN count(d) AS c"
                    with
                    | Ok o -> Cypher_table.Table.to_string o.Api.table
                    | Error e -> Cypher_core.Errors.to_string e))
          in
          let results = List.map Domain.join domains in
          (match results with
          | first :: rest ->
              List.iteri
                (fun i r ->
                    Alcotest.(check string)
                      (Printf.sprintf "round %d domain %d agrees" round i)
                      first r)
                rest;
              Alcotest.(check bool)
                (Printf.sprintf "round %d count present" round)
                true
                (Test_util.contains_substring first (string_of_int expected))
          | [] -> Alcotest.fail "no domains ran");
          (* the published snapshot must serve exactly this content *)
          Alcotest.(check bool)
            (Printf.sprintf "round %d snapshot valid" round)
            true
            (Graph.csr_view g <> None)
        done)
  ]

let suite =
  symtab_tests @ lifecycle_tests @ equivalence_tests @ fusion_tests
  @ stress_tests
