(** Property maps: the total ι function with null-as-absence. *)

open Cypher_graph
open Test_util

let suite =
  [
    case "absent key reads as null" (fun () ->
        check_value "empty" vnull (Props.get Props.empty "k"));
    case "set then get" (fun () ->
        let p = Props.set Props.empty "k" (vint 1) in
        check_value "k" (vint 1) (Props.get p "k"));
    case "setting null removes the key" (fun () ->
        let p = Props.set (Props.set Props.empty "k" (vint 1)) "k" vnull in
        Alcotest.(check bool) "empty again" true (Props.is_empty p));
    case "of_list drops null values" (fun () ->
        let p = Props.of_list [ ("a", vint 1); ("b", vnull) ] in
        Alcotest.(check (list string)) "keys" [ "a" ] (Props.keys p));
    case "merge_into overwrites and removes" (fun () ->
        let base = Props.of_list [ ("a", vint 1); ("b", vint 2) ] in
        let extra = Props.of_list [ ("b", vint 20); ("c", vint 3) ] in
        let merged = Props.merge_into base extra in
        check_value "a kept" (vint 1) (Props.get merged "a");
        check_value "b overwritten" (vint 20) (Props.get merged "b");
        check_value "c added" (vint 3) (Props.get merged "c"));
    case "equality ignores binding order" (fun () ->
        let p1 = Props.of_list [ ("a", vint 1); ("b", vint 2) ] in
        let p2 = Props.of_list [ ("b", vint 2); ("a", vint 1) ] in
        Alcotest.(check bool) "equal" true (Props.equal p1 p2));
    case "remove is idempotent" (fun () ->
        let p = Props.of_list [ ("a", vint 1) ] in
        let p1 = Props.remove p "a" in
        let p2 = Props.remove p1 "a" in
        Alcotest.(check bool) "equal" true (Props.equal p1 p2));
    case "keys are sorted" (fun () ->
        let p = Props.of_list [ ("z", vint 1); ("a", vint 2); ("m", vint 3) ] in
        Alcotest.(check (list string)) "sorted" [ "a"; "m"; "z" ] (Props.keys p));
  ]
