(** Robustness and cross-validation:

    - the parser and lexer never raise on arbitrary input — they return
      typed errors;
    - 1-hop match counts agree with a brute-force count over the
      relationship list;
    - homomorphic matching only ever adds embeddings. *)

open Cypher_graph
open Cypher_table
module Api = Cypher_core.Api
module Config = Cypher_core.Config

(* --- parser robustness --------------------------------------------- *)

let gen_garbage =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_bound 60))

(* fragments that look like Cypher, glued randomly: exercises deeper
   parser paths than raw characters *)
let fragments =
  [|
    "MATCH"; "CREATE"; "MERGE"; "SAME"; "ALL"; "RETURN"; "WITH"; "WHERE";
    "DELETE"; "SET"; "("; ")"; "["; "]"; "{"; "}"; "-"; "->"; "<-"; ":";
    ","; "n"; "a"; "b"; "x"; "1"; "2.5"; "'s'"; "＄"; "$p"; "*"; ".."; "=";
    "+="; "AS"; "ORDER"; "BY"; "LIMIT"; "|"; "."; ";"; "count"; "null";
  |]

let gen_franken =
  QCheck.Gen.(
    map (String.concat " ")
      (list_size (int_bound 25) (oneofl (Array.to_list fragments))))

let no_crash src =
  match Cypher_parser.Parser.parse_string src with
  | Ok _ | Error _ -> true
  | exception e ->
      QCheck.Test.fail_reportf "parser raised %s on %S" (Printexc.to_string e)
        src

let parser_fuzz =
  [
    QCheck.Test.make ~name:"parser never raises on garbage" ~count:500
      (QCheck.make ~print:(fun s -> s) gen_garbage)
      no_crash;
    QCheck.Test.make ~name:"parser never raises on keyword salad" ~count:500
      (QCheck.make ~print:(fun s -> s) gen_franken)
      no_crash;
  ]

(* --- matcher cross-check -------------------------------------------- *)

let gen_small_graph =
  QCheck.Gen.(
    let gen_node =
      map (fun labels -> (labels, [])) (list_size (int_bound 2) (oneofl [ "A"; "B" ]))
    in
    map2
      (fun nodes raw_rels ->
        let n = List.length nodes in
        let rels = List.map (fun (a, ty, b) -> (a mod n, ty, b mod n)) raw_rels in
        Cypher_paper.Fixtures.build nodes rels)
      (list_size (int_range 1 5) gen_node)
      (list_size (int_bound 10)
         (triple (int_bound 4) (oneofl [ "T"; "U" ]) (int_bound 4))))

let arb_small_graph = QCheck.make ~print:Graph.to_string gen_small_graph

(** Brute-force count of embeddings of (a:la)-[:ty]->(b:lb). *)
let brute_force g la ty lb =
  List.length
    (List.filter
       (fun (r : Graph.rel) ->
         r.Graph.r_type = ty
         && Graph.has_label g r.Graph.src la
         && Graph.has_label g r.Graph.tgt lb)
       (Graph.rels g))

let engine_count ?(config = Config.revised) g la ty lb =
  let q =
    Printf.sprintf "MATCH (a:%s)-[:%s]->(b:%s) RETURN count(*) AS n" la ty lb
  in
  match Api.run_string ~config g q with
  | Ok o -> (
      match Record.find (List.hd (Table.rows o.Api.table)) "n" with
      | Value.Int n -> n
      | _ -> -1)
  | Error _ -> -1

let brute_force_rev g =
  List.length
    (List.filter
       (fun (r : Graph.rel) ->
         r.Graph.r_type = "T"
         && Graph.has_label g r.Graph.src "B"
         && Graph.has_label g r.Graph.tgt "A")
       (Graph.rels g))

let matcher_tests =
  [
    QCheck.Test.make ~name:"1-hop match count agrees with brute force"
      ~count:150
      (QCheck.pair arb_small_graph (QCheck.oneofl [ ("A", "T", "B"); ("B", "U", "A"); ("A", "U", "A") ]))
      (fun (g, (la, ty, lb)) ->
        engine_count g la ty lb = brute_force g la ty lb);
    QCheck.Test.make
      ~name:"homomorphic matching yields at least the isomorphic embeddings"
      ~count:100 arb_small_graph
      (fun g ->
        let q = "MATCH (a)-[:T]->(b), (c)-[:U]->(d) RETURN count(*) AS n" in
        let count config =
          match Api.run_string ~config g q with
          | Ok o -> (
              match Record.find (List.hd (Table.rows o.Api.table)) "n" with
              | Value.Int n -> n
              | _ -> -1)
          | Error _ -> -1
        in
        count (Config.with_match_mode Config.Homomorphic Config.revised)
        >= count Config.revised);
    QCheck.Test.make
      ~name:"undirected 1-hop counts both directions (self-loops once)"
      ~count:100 arb_small_graph
      (fun g ->
        (* a self-loop on an :A:B node qualifies in both directions but
           is traversed only once undirected *)
        let qualifying_self_loops =
          List.length
            (List.filter
               (fun (r : Graph.rel) ->
                 r.Graph.r_type = "T"
                 && r.Graph.src = r.Graph.tgt
                 && Graph.has_label g r.Graph.src "A"
                 && Graph.has_label g r.Graph.src "B")
               (Graph.rels g))
        in
        let directed =
          engine_count g "A" "T" "B" + brute_force_rev g
          - qualifying_self_loops
        in
        let undirected =
          match
            Api.run_string ~config:Config.revised g
              "MATCH (a:A)-[:T]-(b:B) RETURN count(*) AS n"
          with
          | Ok o -> (
              match Record.find (List.hd (Table.rows o.Api.table)) "n" with
              | Value.Int n -> n
              | _ -> -1)
          | Error _ -> -1
        in
        undirected = directed);
  ]

let suite = List.map QCheck_alcotest.to_alcotest (parser_fuzz @ matcher_tests)
