(** The lexer: tokens, literals, comments, arrows, error positions. *)

open Cypher_parser
open Test_util

let kinds src =
  match Lexer.tokenize src with
  | Ok toks -> List.map (fun t -> t.Token.kind) toks
  | Error e -> Alcotest.failf "lexing failed: %s" (Lexer.error_to_string e)

let lex_fails src =
  match Lexer.tokenize src with Ok _ -> false | Error _ -> true

let check_kinds name expected src =
  Alcotest.(check (list string))
    name
    (List.map Token.describe expected)
    (List.map Token.describe (kinds src))

let suite =
  [
    case "identifiers and keywords are both idents" (fun () ->
        check_kinds "match" [ Token.Ident "MATCH"; Token.Ident "n"; Token.Eof ]
          "MATCH n");
    case "numbers" (fun () ->
        check_kinds "int" [ Token.Int 42; Token.Eof ] "42";
        check_kinds "float" [ Token.Float 3.25; Token.Eof ] "3.25";
        check_kinds "exponent" [ Token.Float 1e3; Token.Eof ] "1e3");
    case "range does not eat into a float" (fun () ->
        check_kinds "1..3" [ Token.Int 1; Token.Dotdot; Token.Int 3; Token.Eof ] "1..3");
    case "strings with both quote styles and escapes" (fun () ->
        check_kinds "single" [ Token.Str "a'b"; Token.Eof ] "'a\\'b'";
        check_kinds "double" [ Token.Str "x"; Token.Eof ] "\"x\"";
        check_kinds "newline escape" [ Token.Str "a\nb"; Token.Eof ] "'a\\nb'");
    case "control-character escapes" (fun () ->
        check_kinds "carriage return" [ Token.Str "a\rb"; Token.Eof ] "'a\\rb'";
        check_kinds "backspace" [ Token.Str "a\bb"; Token.Eof ] "'a\\bb'";
        check_kinds "form feed" [ Token.Str "a\012b"; Token.Eof ] "'a\\fb'";
        check_kinds "tab" [ Token.Str "a\tb"; Token.Eof ] "'a\\tb'");
    case "\\uXXXX escapes" (fun () ->
        check_kinds "ascii" [ Token.Str "A"; Token.Eof ] "'\\u0041'";
        check_kinds "control" [ Token.Str "\011"; Token.Eof ] "'\\u000b'";
        check_kinds "uppercase hex" [ Token.Str "\011"; Token.Eof ] "'\\u000B'";
        (* non-ASCII code points come out UTF-8 encoded *)
        check_kinds "latin-1" [ Token.Str "\xc3\xa9"; Token.Eof ] "'\\u00e9'";
        check_kinds "bmp" [ Token.Str "\xe2\x82\xac"; Token.Eof ] "'\\u20ac'");
    case "malformed \\u escapes fail" (fun () ->
        Alcotest.(check bool) "too short" true (lex_fails "'\\u00'");
        Alcotest.(check bool) "not hex" true (lex_fails "'\\u00zz'");
        Alcotest.(check bool) "surrogate" true (lex_fails "'\\ud800'"));
    case "unknown escapes fail" (fun () ->
        Alcotest.(check bool) "fails" true (lex_fails "'\\q'"));
    case "parameters" (fun () ->
        check_kinds "$p" [ Token.Param "p"; Token.Eof ] "$p");
    case "backtick identifiers" (fun () ->
        check_kinds "`weird name`" [ Token.Ident "weird name"; Token.Eof ]
          "`weird name`");
    case "arrows and comparison operators disambiguate" (fun () ->
        check_kinds "->" [ Token.Arrow; Token.Eof ] "->";
        check_kinds "<-" [ Token.Larrow; Token.Eof ] "<-";
        check_kinds "<=" [ Token.Le; Token.Eof ] "<=";
        check_kinds "<>" [ Token.Neq; Token.Eof ] "<>";
        check_kinds "a < b" [ Token.Ident "a"; Token.Lt; Token.Ident "b"; Token.Eof ]
          "a < b");
    case "relationship pattern token stream" (fun () ->
        check_kinds "-[r:T]->"
          [
            Token.Minus; Token.Lbracket; Token.Ident "r"; Token.Colon;
            Token.Ident "T"; Token.Rbracket; Token.Arrow; Token.Eof;
          ]
          "-[r:T]->");
    case "+= is one token" (fun () ->
        check_kinds "+=" [ Token.Pluseq; Token.Eof ] "+=");
    case "line comments are skipped" (fun () ->
        check_kinds "comment" [ Token.Int 1; Token.Int 2; Token.Eof ]
          "1 // hello\n2");
    case "block comments are skipped" (fun () ->
        check_kinds "comment" [ Token.Int 1; Token.Int 2; Token.Eof ]
          "1 /* multi\nline */ 2");
    case "errors carry positions" (fun () ->
        match Lexer.tokenize "ok\n  @" with
        | Error e ->
            Alcotest.(check int) "line" 2 e.Lexer.line;
            Alcotest.(check int) "col" 3 e.Lexer.col
        | Ok _ -> Alcotest.fail "should not lex");
    case "unterminated string fails" (fun () ->
        Alcotest.(check bool) "fails" true (lex_fails "'oops"));
    case "unterminated comment fails" (fun () ->
        Alcotest.(check bool) "fails" true (lex_fails "/* oops"));
  ]
