(** Homomorphism-based matching — the extension the paper plans for
    later Cypher versions (Section 6, Example 7). *)

open Cypher_graph
open Test_util
module Config = Cypher_core.Config

let homo = Config.with_match_mode Config.Homomorphic Config.revised

let single_edge = graph_of "CREATE (:A)-[:T]->(:B)"

let suite =
  [
    case "one edge can play two pattern positions" (fun () ->
        let q = "MATCH (a)-[r1:T]->(b), (c)-[r2:T]->(d) RETURN a" in
        check_rows "isomorphic finds nothing" 0 (run_table single_edge q);
        check_rows "homomorphic finds the doubled embedding" 1
          (run_table ~config:homo single_edge q));
    case "edge reuse within one pattern" (fun () ->
        (* A -T-> A self loop: pattern of length 2 can reuse the loop *)
        let loop = graph_of "CREATE (v:V) WITH v CREATE (v)-[:T]->(v)" in
        let q = "MATCH (x)-[:T]->(y)-[:T]->(z) RETURN x" in
        check_rows "isomorphic: no" 0 (run_table loop q);
        check_rows "homomorphic: yes" 1 (run_table ~config:homo loop q));
    case "variable-length walks stay edge-distinct (finiteness)" (fun () ->
        let loop = graph_of "CREATE (v:V) WITH v CREATE (v)-[:T]->(v)" in
        (* under homomorphism an unbounded walk would otherwise be
           infinite; the walk-local restriction keeps it at one row *)
        check_rows "finite" 1
          (run_table ~config:homo loop "MATCH (v)-[*]->(v) RETURN v"));
    case "homomorphic matching only adds embeddings" (fun () ->
        let g = graph_of "CREATE (:A)-[:T]->(:B), (:A)-[:T]->(:B)" in
        let q = "MATCH (a)-[r1:T]->(b), (c)-[r2:T]->(d) RETURN a" in
        let iso_rows = Cypher_table.Table.row_count (run_table g q) in
        let homo_rows =
          Cypher_table.Table.row_count (run_table ~config:homo g q)
        in
        Alcotest.(check int) "iso" 2 iso_rows;
        Alcotest.(check int) "homo = iso + diagonal reuses" 4 homo_rows);
    case "merge-then-match succeeds on the Strong Collapse graph" (fun () ->
        (* the Example 7 anomaly disappears under homomorphic matching *)
        let same =
          fst
            (Cypher_paper.Runner.run_merge_mode Config.permissive
               ~mode:Cypher_ast.Ast.Merge_same Cypher_paper.Fixtures.example7_merge
               ( Cypher_paper.Fixtures.example7_graph,
                 Cypher_paper.Fixtures.example7_table ))
        in
        check_rows "isomorphic: anomaly" 0
          (run_table same Cypher_paper.Fixtures.example7_match);
        Alcotest.(check bool) "homomorphic: positive match" true
          (Cypher_table.Table.row_count
             (run_table ~config:homo same Cypher_paper.Fixtures.example7_match)
          > 0));
    case "legacy MERGE under homomorphic matching" (fun () ->
        (* match-or-create still works; matching is just more permissive *)
        let config =
          Config.with_match_mode Config.Homomorphic Config.cypher9
        in
        let g =
          run_graph ~config Graph.empty
            "CREATE (:A)-[:T]->(:B) WITH 1 AS one MATCH (a:A), (b:B) MERGE \
             (a)-[:T]->(b)"
        in
        Alcotest.(check int) "no duplicate edge" 1 (Graph.rel_count g));
  ]
